"""Determinism checker: wall clock and unseeded randomness in scope."""

from __future__ import annotations

from repro.analysis import run_checks
from repro.analysis.checks import DeterminismChecker


def codes(findings):
    return [f.code for f in findings]


def test_wall_clock_in_enclave_code_is_flagged(lint):
    findings = lint("repro.core.history", """
        import time

        def stamp():
            return time.time()
    """, DeterminismChecker())
    assert codes(findings) == ["XD001"]


def test_aliased_and_from_imports_are_still_caught(lint):
    findings = lint("repro.faults.plan", """
        import time as t
        from time import monotonic

        def bad():
            return t.time() + monotonic()
    """, DeterminismChecker())
    assert codes(findings) == ["XD001", "XD001"]


def test_datetime_now_family_is_flagged(lint):
    findings = lint("repro.experiments.runner", """
        import datetime
        from datetime import datetime as dt

        def bad():
            return datetime.datetime.now(), dt.utcnow()
    """, DeterminismChecker())
    assert codes(findings) == ["XD002", "XD002"]


def test_plain_datetime_constructor_is_fine(lint):
    findings = lint("repro.experiments.runner", """
        from datetime import datetime

        def ok():
            return datetime(2017, 12, 11)
    """, DeterminismChecker())
    assert findings == []


def test_unseeded_random_and_module_level_random_are_flagged(lint):
    findings = lint("repro.faults.plan", """
        import random

        def bad():
            return random.Random(), random.random()
    """, DeterminismChecker())
    assert codes(findings) == ["XD003", "XD003"]


def test_seeded_random_stream_is_fine(lint):
    findings = lint("repro.faults.plan", """
        import random

        def ok(seed):
            return random.Random(seed)
    """, DeterminismChecker())
    assert findings == []


def test_os_entropy_outside_crypto_is_flagged(lint):
    findings = lint("repro.faults.plan", """
        import os
        import secrets

        def bad():
            return secrets.token_bytes(16) + os.urandom(8)
    """, DeterminismChecker())
    assert codes(findings) == ["XD004", "XD004"]


def test_crypto_modules_may_draw_os_entropy(lint):
    findings = lint("repro.crypto.dh", """
        import secrets

        def keygen():
            return secrets.randbits(256)
    """, DeterminismChecker())
    assert findings == []


def test_clock_module_is_the_sanctioned_custodian(lint):
    # repro.net.clock is out of deterministic scope (it IS the clock);
    # a deterministic-scope module with the same code would be flagged.
    source = """
        import time as _time

        def now():
            return _time.monotonic()
    """
    assert lint("repro.net.clock", source, DeterminismChecker()) == []
    flagged = lint("repro.faults.clock", source, DeterminismChecker())
    assert codes(flagged) == ["XD001"]


def test_out_of_scope_client_code_is_not_checked(lint):
    findings = lint("repro.baselines.peas", """
        import random

        def ok():
            return random.random()
    """, DeterminismChecker())
    assert findings == []


def test_real_tree_has_no_determinism_violations(repo_graph):
    result = run_checks(repo_graph, checkers=[DeterminismChecker()])
    assert result.findings == []
