"""The dataflow checker through the xlint pipeline, and the mutation gate.

Three layers of assurance:

* integration — XT findings flow through ``run_checks`` with baselines,
  waivers and JSON output behaving like every other rule family;
* the real tree is clean, and stays *deterministically* clean (same
  tree ⇒ byte-identical findings JSON);
* the mutation gate — planted violations in a copy of the real tree
  MUST be caught, proving the engine detects what it claims to detect
  (a taint engine that silently goes blind would otherwise keep CI
  green forever).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap

from repro.analysis import ModuleGraph, SourceModule, run_checks

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
REPRO_SRC = os.path.join(REPO_ROOT, "src", "repro")


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "xlint.py"),
         *args],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


def fixture_module(name, source):
    return SourceModule.from_source(name, textwrap.dedent(source))


LEAKY_HOST_MODULE = fixture_module("repro.core.gateway", """
    import logging
    logger = logging.getLogger(__name__)

    def handle(query):
        logger.info(query)
""")


# ---------------------------------------------------------------------------
# Integration with the xlint pipeline
# ---------------------------------------------------------------------------

def test_findings_carry_the_checker_contract():
    result = run_checks([LEAKY_HOST_MODULE], checkers=["dataflow"])
    assert not result.ok
    finding = result.findings[0]
    assert finding.checker == "dataflow"
    assert finding.code == "XT001"
    assert finding.module == "repro.core.gateway"
    assert finding.line == 6
    assert finding.hint


def test_waiver_suppresses_an_xt_finding():
    waived = fixture_module("repro.core.gateway", """
        import logging
        logger = logging.getLogger(__name__)

        def handle(query):
            logger.info(query)  # xlint: disable=dataflow
    """)
    result = run_checks([waived], checkers=["dataflow"])
    assert result.ok


def test_waiver_for_another_checker_does_not_suppress():
    waived = fixture_module("repro.core.gateway", """
        import logging
        logger = logging.getLogger(__name__)

        def handle(query):
            logger.info(query)  # xlint: disable=boundary
    """)
    result = run_checks([waived], checkers=["dataflow"])
    assert not result.ok


def test_fingerprints_are_line_insensitive():
    shifted = fixture_module("repro.core.gateway", """
        import logging

        logger = logging.getLogger(__name__)


        def handle(query):
            logger.info(query)
    """)
    first = run_checks([LEAKY_HOST_MODULE], checkers=["dataflow"])
    second = run_checks([shifted], checkers=["dataflow"])
    assert [f.fingerprint() for f in first.findings] == \
        [f.fingerprint() for f in second.findings]


def test_plaintext_into_experiment_serialization_is_flagged():
    result = run_checks([fixture_module("repro.experiments.report", """
        import json

        def dump_report(path, query, latencies):
            with open(path, "w") as handle:
                json.dump({"query": query, "latencies": latencies}, handle)
    """)], checkers=["dataflow"])
    assert [f.code for f in result.findings] == ["XT001"]


# ---------------------------------------------------------------------------
# The real tree
# ---------------------------------------------------------------------------

def test_real_tree_is_clean(repo_graph):
    result = run_checks(repo_graph, checkers=["dataflow"])
    assert result.ok, "\n" + "\n".join(
        f.render() for f in result.findings
    )


def test_real_tree_findings_json_is_byte_identical(repo_graph):
    first = run_checks(repo_graph, checkers=["dataflow"]).to_json()
    second = run_checks(
        ModuleGraph.from_root(REPRO_SRC), checkers=["dataflow"]
    ).to_json()
    assert first.encode("utf-8") == second.encode("utf-8")


# ---------------------------------------------------------------------------
# Mutation gate: planted bugs in a copy of the real tree must be caught
# ---------------------------------------------------------------------------

def mutated_tree(tmp_path, relpath, old, new):
    """Copy src/repro and apply one source mutation to it."""
    root = tmp_path / "repro"
    shutil.copytree(REPRO_SRC, root)
    target = root / relpath
    source = target.read_text(encoding="utf-8")
    assert old in source, f"mutation anchor vanished from {relpath}"
    target.write_text(source.replace(old, new, 1), encoding="utf-8")
    return root


def test_mutation_gate_xt001_planted_host_query_log(tmp_path):
    # Plant a plaintext query log in the host-placed gateway right where
    # it first extracts the query from the request.
    root = mutated_tree(
        tmp_path, "core/gateway.py",
        "        query = params.get(\"q\", [\"\"])[0]\n",
        "        query = params.get(\"q\", [\"\"])[0]\n"
        "        print(\"handling\", query)\n",
    )
    proc = run_cli(str(root), "--checkers", "dataflow",
                   "--format=json", "--no-baseline")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    codes = {f["code"] for f in json.loads(proc.stdout)["findings"]}
    assert "XT001" in codes


def test_mutation_gate_xt003_planted_nonce_reuse(tmp_path):
    # Plant a nonce reuse in the channel send path: encrypt twice under
    # the same (counter-derived) nonce.
    root = tmp_path / "repro"
    root.mkdir()
    (root / "__init__.py").write_text("")
    crypto = root / "crypto"
    crypto.mkdir()
    (crypto / "__init__.py").write_text("")
    (crypto / "bad_channel.py").write_text(textwrap.dedent("""
        from repro.crypto.aead import aead_encrypt

        def send_twice(key, nonce, first, second):
            one = aead_encrypt(key, nonce, first, b"")
            two = aead_encrypt(key, nonce, second, b"")
            return one, two
    """))
    proc = run_cli(str(root), "--checkers", "dataflow",
                   "--format=json", "--no-baseline")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    codes = {f["code"] for f in json.loads(proc.stdout)["findings"]}
    assert codes == {"XT003"}


def test_mutation_gate_xt005_planted_query_in_bridge_exception(tmp_path):
    root = mutated_tree(
        tmp_path, "core/proxy.py",
        "                \"engine unreachable and no degraded result "
        "cached for \"\n"
        "                \"this query: \" + scrub(exc, request.query)",
        "                f\"engine unreachable for query "
        "{request.query!r}: {exc}\"",
    )
    proc = run_cli(str(root), "--checkers", "dataflow",
                   "--format=json", "--no-baseline")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    codes = {f["code"] for f in json.loads(proc.stdout)["findings"]}
    assert "XT005" in codes
