"""The SimAttack similarity metric and the Figure 1 similarity index."""

import pytest

from repro.attacks.profiles import UserProfile
from repro.attacks.similarity import (
    SimilarityIndex,
    exponential_smoothing,
    max_similarity_to_log,
    profile_similarity,
    query_similarity,
)
from repro.errors import ExperimentError
from repro.textutils import term_vector


def test_exponential_smoothing_single_value():
    assert exponential_smoothing([0.7]) == 0.7


def test_exponential_smoothing_weights_top():
    # Ascending sequence: the last (largest) value dominates with alpha=0.5.
    smoothed = exponential_smoothing([0.0, 0.0, 1.0], alpha=0.5)
    assert smoothed == 0.5
    smoothed_flat = exponential_smoothing([1.0, 1.0, 1.0], alpha=0.5)
    assert smoothed_flat == 1.0


def test_exponential_smoothing_alpha_one_returns_last():
    assert exponential_smoothing([0.1, 0.2, 0.9], alpha=1.0) == 0.9


def test_exponential_smoothing_validation():
    with pytest.raises(ExperimentError):
        exponential_smoothing([], alpha=0.5)
    with pytest.raises(ExperimentError):
        exponential_smoothing([0.5], alpha=0.0)


def test_profile_similarity_exact_member_is_high():
    profile = UserProfile("u", ["hotel rome", "gardening soil", "nfl scores"])
    member = query_similarity("hotel rome", profile)
    stranger = query_similarity("quantum physics", profile)
    assert member > stranger
    assert stranger == 0.0


def test_profile_similarity_monotone_in_overlap():
    profile = UserProfile("u", ["cheap hotel rome booking"])
    more = query_similarity("cheap hotel rome", profile)
    less = query_similarity("cheap", profile)
    assert more > less > 0.0


def test_profile_similarity_takes_vector():
    profile = UserProfile("u", ["hotel rome"])
    assert profile_similarity(term_vector("hotel rome"), profile) == \
        query_similarity("hotel rome", profile)


# ---------------------------------------------------------------------------
# SimilarityIndex
# ---------------------------------------------------------------------------

TEXTS = ["hotel rome", "diabetes diet", "nfl playoffs", "hotel cheap",
         "rome weather forecast"]


def test_index_matches_bruteforce():
    index = SimilarityIndex(TEXTS)
    vectors = [term_vector(t) for t in TEXTS]
    for probe in ["hotel rome", "diet plans", "playoffs", "garden"]:
        brute = max_similarity_to_log(probe, vectors)
        assert index.max_similarity(probe) == pytest.approx(brute, abs=1e-9)


def test_index_exact_match_snaps_to_one():
    index = SimilarityIndex(TEXTS)
    assert index.max_similarity("diabetes diet") == 1.0


def test_index_disjoint_is_zero():
    index = SimilarityIndex(TEXTS)
    assert index.max_similarity("quantum entanglement") == 0.0


def test_index_dedupes_texts():
    index = SimilarityIndex(["a b", "a b", "c d"])
    assert len(index) == 2


def test_index_rejects_empty():
    with pytest.raises(ExperimentError):
        SimilarityIndex([])


def test_index_empty_probe():
    index = SimilarityIndex(TEXTS)
    assert index.max_similarity("") == 0.0
