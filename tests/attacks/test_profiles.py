"""Adversary profile construction."""

import pytest

from repro.attacks.profiles import UserProfile, build_profiles
from repro.errors import DatasetError


def test_profile_precomputes_vectors():
    profile = UserProfile(user_id="u", query_texts=["hotel rome", "hotel"])
    assert len(profile.query_vectors) == 2
    assert profile.aggregate["hotel"] == 2
    assert len(profile) == 2


def test_empty_profile_rejected():
    with pytest.raises(DatasetError):
        UserProfile(user_id="u", query_texts=[])


def test_build_profiles_from_log(split_log):
    train, _ = split_log
    users = train.most_active_users(5)
    profiles = build_profiles(train, users)
    assert set(profiles) == set(users)
    for user, profile in profiles.items():
        assert profile.user_id == user
        assert len(profile) == len(train.queries_of(user))


def test_build_profiles_defaults_to_all_users(split_log):
    train, _ = split_log
    profiles = build_profiles(train)
    assert set(profiles) == set(train.users)
