"""SimAttack re-identification behaviour."""

import random

import pytest

from repro.attacks.profiles import UserProfile
from repro.attacks.simattack import SimAttack
from repro.errors import ExperimentError

PROFILES = {
    "traveller": UserProfile("traveller", [
        "cheap hotel rome", "flight paris", "cruise caribbean",
        "hotel booking vegas",
    ]),
    "patient": UserProfile("patient", [
        "diabetes symptoms", "diabetes diet plan", "insulin treatment",
    ]),
    "fan": UserProfile("fan", [
        "nfl playoffs", "nba standings", "baseball scores",
    ]),
}


@pytest.fixture()
def attack():
    return SimAttack(PROFILES)


def test_identifies_obvious_query(attack):
    outcome = attack.attack(["hotel rome cheap"])
    assert outcome.successful
    assert outcome.identified_user == "traveller"
    assert outcome.identified_query == "hotel rome cheap"


def test_is_correct_requires_both(attack):
    outcome = attack.attack(["hotel rome cheap"])
    assert attack.is_correct(outcome, "traveller", "hotel rome cheap")
    assert not attack.is_correct(outcome, "patient", "hotel rome cheap")
    assert not attack.is_correct(outcome, "traveller", "other query")


def test_tie_means_unsuccessful(attack):
    # Algorithm 1 samples fakes with replacement, so an obfuscated query can
    # carry the same sub-query twice; both (query, user) pairs then score
    # identically and the attack cannot pick a unique best pair.
    outcome = attack.attack(["diabetes symptoms", "diabetes symptoms"])
    assert outcome.unsuccessful


def test_identical_profiles_tie():
    profiles = {
        "twin-a": UserProfile("twin-a", ["hotel rome", "flight paris"]),
        "twin-b": UserProfile("twin-b", ["hotel rome", "flight paris"]),
    }
    outcome = SimAttack(profiles).attack(["hotel rome"])
    assert outcome.unsuccessful


def test_good_fake_confuses_the_attack(attack):
    # A fake pointing strongly at another profile can beat the real query.
    outcome = attack.attack(["hotel rome cheap flights", "diabetes symptoms"])
    # "diabetes symptoms" is an exact profile query (similarity ~1 for
    # patient); the attack picks the wrong pair.
    assert (not outcome.successful) or outcome.identified_user == "patient"


def test_reidentification_rate(attack):
    triples = [
        ("traveller", "hotel rome cheap", ["hotel rome cheap"]),
        ("patient", "diabetes diet", ["diabetes diet"]),
        ("fan", "quantum physics", ["quantum physics"]),  # out of profile
    ]
    rate = attack.reidentification_rate(triples)
    assert 0.0 <= rate <= 1.0
    assert rate == pytest.approx(2 / 3, abs=1e-9)


def test_rate_requires_queries(attack):
    with pytest.raises(ExperimentError):
        attack.reidentification_rate([])


def test_attack_requires_subqueries(attack):
    with pytest.raises(ExperimentError):
        attack.attack([])


def test_profiles_required():
    with pytest.raises(ExperimentError):
        SimAttack({})


def test_score_cache_consistency(attack):
    first = attack.attack(["hotel rome cheap"])
    second = attack.attack(["hotel rome cheap"])
    assert first == second


def test_obfuscation_lowers_reidentification(split_log, rng):
    """More fakes -> fewer re-identifications, on the real synthetic log."""
    from repro.attacks.profiles import build_profiles
    from repro.core.history import QueryHistory
    from repro.core.obfuscation import obfuscate_query

    train, test = split_log
    users = train.most_active_users(15)
    attack = SimAttack(build_profiles(train, users))
    history = QueryHistory(50_000)
    history.extend(q.text for q in train)

    def rate_for(k):
        triples = []
        for user in users:
            for query in test.queries_of(user)[:3]:
                obfuscated = obfuscate_query(query.text, history, k, rng)
                triples.append((user, query.text, list(obfuscated.subqueries)))
        return attack.reidentification_rate(triples)

    assert rate_for(5) < rate_for(0)
