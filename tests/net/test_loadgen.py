"""Open-loop load generation and sweep extraction."""

import pytest

from repro.errors import ExperimentError
from repro.net.loadgen import (
    OpenLoopLoadGenerator,
    SweepPoint,
    run_load,
    saturation_rate,
    sweep,
)
from repro.net.queueing import QueueingStation, ServiceTime


def test_constant_rate_schedule():
    generator = OpenLoopLoadGenerator(rate_rps=100, duration_seconds=1.0)
    times = generator.arrival_times()
    assert len(times) == 100
    gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
    assert gaps == {0.01}


def test_poisson_schedule():
    generator = OpenLoopLoadGenerator(
        rate_rps=100, duration_seconds=1.0, poisson=True, seed=3
    )
    times = generator.arrival_times()
    assert len(times) == 100
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert len(set(round(g, 9) for g in gaps)) > 10  # actually random


def test_schedule_validation():
    with pytest.raises(ExperimentError):
        OpenLoopLoadGenerator(rate_rps=0, duration_seconds=1).arrival_times()
    with pytest.raises(ExperimentError):
        OpenLoopLoadGenerator(rate_rps=10, duration_seconds=0).arrival_times()
    with pytest.raises(ExperimentError):
        OpenLoopLoadGenerator(rate_rps=0.1, duration_seconds=1).arrival_times()


def station():
    return QueueingStation(
        "s", workers=2, service=ServiceTime(0.001), seed=7
    )


def test_run_load():
    run = run_load(station(), 100, duration_seconds=1.0)
    assert run.offered == 100
    assert run.throughput_rps > 0


def test_sweep_points():
    points = sweep(station(), [100, 500], duration_seconds=1.0)
    assert len(points) == 2
    assert points[0].offered_rps == 100
    assert points[0].p50_latency <= points[0].p99_latency


def test_saturation_rate_picks_highest_healthy_point():
    points = [
        SweepPoint(100, 100, 0.01, 0.01, 0.02),
        SweepPoint(1000, 1000, 0.02, 0.02, 0.04),
        SweepPoint(5000, 3000, 0.5, 0.4, 2.0),   # not keeping up
        SweepPoint(10000, 3100, 5.0, 4.0, 9.0),  # melted
    ]
    assert saturation_rate(points) == 1000


def test_saturation_rate_latency_budget():
    points = [
        SweepPoint(100, 100, 0.5, 0.5, 0.9),
        SweepPoint(200, 200, 2.0, 2.0, 3.0),
    ]
    assert saturation_rate(points, latency_budget_seconds=1.0) == 100
    assert saturation_rate(points, latency_budget_seconds=5.0) == 200


def test_saturation_rate_p99_mode():
    points = [SweepPoint(100, 100, 0.1, 0.1, 3.0)]
    assert saturation_rate(points, percentile="p99") == 0.0
    assert saturation_rate(points, percentile="p50") == 100
