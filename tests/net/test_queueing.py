"""Queueing station: saturation behaviour of the Figure 5 model."""

import pytest

from repro.errors import ExperimentError
from repro.net.queueing import QueueingStation, ServiceTime


def make_station(workers=2, median=0.001):
    return QueueingStation(
        "station", workers=workers, service=ServiceTime(median), seed=1
    )


def test_capacity_estimate():
    station = make_station(workers=4, median=0.002)
    assert station.capacity_rps == pytest.approx(
        4 / ServiceTime(0.002).approximate_mean
    )


def test_below_capacity_latency_is_service_time():
    station = make_station(workers=4, median=0.001)
    arrivals = [i * 0.01 for i in range(500)]  # 100 req/s << capacity
    run = station.run(arrivals)
    assert run.latency.percentile(50) == pytest.approx(0.001, rel=0.3)


def test_above_capacity_latency_explodes():
    station = make_station(workers=1, median=0.01)  # ~100 req/s capacity
    arrivals = [i / 500.0 for i in range(1000)]  # 500 req/s offered
    run = station.run(arrivals)
    assert run.latency.percentile(50) > 0.1  # queueing dominates


def test_throughput_caps_at_capacity():
    station = make_station(workers=1, median=0.01)
    arrivals = [i / 1000.0 for i in range(2000)]  # 1000 req/s offered
    run = station.run(arrivals)
    assert run.throughput_rps < 150


def test_latency_measured_from_scheduled_arrival():
    """No coordinated omission: the second request's latency includes the
    time it waited behind the first."""

    class FixedService(ServiceTime):
        def sample(self, rng):
            return 1.0

    station = QueueingStation(
        "fixed", workers=1, service=FixedService(1.0, 0.0), seed=1
    )
    run = station.run([0.0, 0.0])
    assert run.latency.max == pytest.approx(2.0, rel=0.01)


def test_more_workers_more_throughput():
    arrivals = [i / 400.0 for i in range(800)]
    slow = make_station(workers=1, median=0.01).run(arrivals)
    fast = make_station(workers=8, median=0.01).run(arrivals)
    assert fast.latency.percentile(99) < slow.latency.percentile(99)


def test_validation():
    with pytest.raises(ExperimentError):
        QueueingStation("x", workers=0, service=ServiceTime(0.001))
    with pytest.raises(ExperimentError):
        ServiceTime(0.0)
    with pytest.raises(ExperimentError):
        make_station().run([])
