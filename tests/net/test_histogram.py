"""Latency recorder: exact and bucketed percentiles."""

import random

import pytest

from repro.errors import ExperimentError
from repro.net.histogram import LatencyRecorder


def test_exact_percentiles():
    recorder = LatencyRecorder(exact=True)
    for value in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]:
        recorder.record(value)
    assert recorder.percentile(50) == 0.5
    assert recorder.percentile(100) == 1.0
    assert recorder.percentile(10) == 0.1
    assert recorder.median == 0.5


def test_bucketed_percentiles_close_to_exact():
    rng = random.Random(5)
    exact = LatencyRecorder(exact=True)
    bucketed = LatencyRecorder()
    for _ in range(5000):
        value = rng.lognormvariate(-2.0, 0.5)
        exact.record(value)
        bucketed.record(value)
    for p in (50, 90, 99):
        assert bucketed.percentile(p) == pytest.approx(
            exact.percentile(p), rel=0.03
        )


def test_mean_min_max():
    recorder = LatencyRecorder()
    for value in (1.0, 2.0, 3.0):
        recorder.record(value)
    assert recorder.mean == pytest.approx(2.0)
    assert recorder.min == 1.0
    assert recorder.max == 3.0
    assert recorder.count == 3


def test_cdf_monotone():
    recorder = LatencyRecorder(exact=True)
    rng = random.Random(1)
    for _ in range(200):
        recorder.record(rng.random())
    cdf = recorder.cdf(20)
    xs = [x for x, _ in cdf]
    ys = [y for _, y in cdf]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == 1.0


def test_bucketed_cdf_monotone():
    recorder = LatencyRecorder()
    rng = random.Random(2)
    for _ in range(500):
        recorder.record(rng.expovariate(10.0))
    cdf = recorder.cdf()
    ys = [y for _, y in cdf]
    assert ys == sorted(ys)
    assert ys[-1] == pytest.approx(1.0)


def test_empty_recorder_errors():
    recorder = LatencyRecorder()
    with pytest.raises(ExperimentError):
        recorder.percentile(50)
    with pytest.raises(ExperimentError):
        recorder.mean
    with pytest.raises(ExperimentError):
        recorder.cdf()


def test_invalid_inputs():
    recorder = LatencyRecorder()
    with pytest.raises(ExperimentError):
        recorder.record(-1.0)
    recorder.record(0.5)
    with pytest.raises(ExperimentError):
        recorder.percentile(101)


def test_sub_resolution_values_clamped():
    recorder = LatencyRecorder()
    recorder.record(1e-9)  # below the 1 µs floor
    assert recorder.percentile(50) <= 2e-6
