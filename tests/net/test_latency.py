"""Latency model sampling and the Figure 7 ordering."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.latency import LatencyModel, LogNormalDelay, NetworkPath


def medians(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def test_network_path_sampling_positive():
    path = NetworkPath(0.01, 0.02)
    rng = random.Random(1)
    for _ in range(100):
        assert path.sample(rng) >= 0.01


def test_network_path_no_jitter_is_constant():
    path = NetworkPath(0.05)
    rng = random.Random(1)
    assert {path.sample(rng) for _ in range(10)} == {0.05}


def test_network_path_validation():
    with pytest.raises(NetworkError):
        NetworkPath(-0.1)
    with pytest.raises(NetworkError):
        NetworkPath(0.1, -0.1)


def test_lognormal_median_calibration():
    delay = LogNormalDelay(0.2, 0.3)
    rng = random.Random(2)
    samples = [delay.sample(rng) for _ in range(4000)]
    assert medians(samples) == pytest.approx(0.2, rel=0.05)


def test_scenario_ordering():
    model = LatencyModel()
    rng = random.Random(3)
    n = 2000
    direct = [model.direct_round_trip(rng) for _ in range(n)]
    xsearch = [
        model.xsearch_round_trip(rng, k=3, proxy_service_seconds=3e-4)
        for _ in range(n)
    ]
    tor = [model.tor_round_trip(rng) for _ in range(n)]
    assert medians(direct) < medians(xsearch) < medians(tor)


def test_xsearch_cost_grows_with_k():
    model = LatencyModel()
    rng_small = random.Random(4)
    rng_large = random.Random(4)
    small = [model.xsearch_round_trip(rng_small, k=0) for _ in range(500)]
    large = [model.xsearch_round_trip(rng_large, k=7) for _ in range(500)]
    assert medians(large) > medians(small)


def test_tor_has_heavy_tail():
    model = LatencyModel()
    rng = random.Random(5)
    samples = sorted(model.tor_round_trip(rng) for _ in range(3000))
    p50 = samples[1500]
    p99 = samples[2970]
    assert p99 > 1.8 * p50  # congestion events stretch the tail


def test_engine_delay_grows_with_subqueries():
    model = LatencyModel()
    rng_a, rng_b = random.Random(6), random.Random(6)
    single = [model.engine_delay(rng_a, 1) for _ in range(500)]
    merged = [model.engine_delay(rng_b, 4) for _ in range(500)]
    assert medians(merged) > medians(single)
