"""Measured Figure 5 harness: determinism, scaling and coalescing.

The virtual mode is the tier-1 pin: a single-threaded discrete-event
sweep whose every simulated batch executes the real pipeline, so two
runs with the same seed must produce byte-identical digests (trace
digest included).  The scaling/coalescing assertions mirror the
acceptance criteria: 4 workers sustain ≥ 2× the 1-worker knee, and
past the knee the mean ecalls-per-request drops below 1.0.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig5_measured

RATES = (100, 300, 1200)
KW = dict(duration_seconds=0.2, seed=7, k=2, limit=1, rates=RATES)


@pytest.fixture(scope="module")
def four_workers():
    return fig5_measured.run_virtual(max_workers=4, **KW)


@pytest.fixture(scope="module")
def one_worker():
    return fig5_measured.run_virtual(max_workers=1, **KW)


def test_virtual_mode_is_byte_deterministic(four_workers):
    again = fig5_measured.run_virtual(max_workers=4, **KW)
    assert four_workers.digest() == again.digest()
    assert four_workers.summary() == again.summary()


def test_four_workers_at_least_double_the_knee(four_workers, one_worker):
    assert one_worker.saturation_rps > 0
    assert four_workers.saturation_rps >= 2 * one_worker.saturation_rps


def test_coalescing_amortises_ecalls_under_saturation(one_worker):
    saturated = one_worker.saturated_points()
    assert saturated, "ladder never crossed the knee"
    mean = sum(p.ecalls_per_request for p in saturated) / len(saturated)
    assert mean < 1.0
    # And batches really grew: the histogram is not all size-1.
    assert any(size > 1
               for point in saturated
               for size in point.batch_histogram)


def test_latency_rises_past_the_knee(one_worker):
    first, last = one_worker.points[0], one_worker.points[-1]
    assert last.p50_latency > first.p50_latency


def test_summary_shape(four_workers):
    summary = four_workers.summary()
    assert summary["mode"] == "virtual"
    assert summary["max_workers"] == 4
    assert len(summary["points"]) == len(RATES)
    for point in summary["points"]:
        assert set(point) >= {
            "offered_rps", "achieved_rps", "p50_latency", "p99_latency",
            "ecalls_per_request", "mean_batch_size", "batch_histogram",
        }
    assert summary["traces"]["invariants_ok"] is True


def test_wallclock_smoke():
    """Wall-clock mode end to end at a trivial load (no perf asserts:
    timings are machine-dependent; bench_smoke.sh records the curve)."""
    result = fig5_measured.run_wallclock(
        max_workers=2, rates=(20,), duration_seconds=0.2,
        lanes=4, engine_latency=0.005,
    )
    assert result.mode == "wall"
    point = result.points[0]
    assert point.requests > 0
    assert point.ecalls_per_request <= 1.0 + 1e-9
    assert fig5_measured.format_table(result)
