"""The Figure 5 cluster harness: availability determinism + sweep shape."""

from __future__ import annotations

from repro.experiments import fig5_cluster


def test_availability_run_is_deterministic_and_survives_the_kill():
    result = fig5_cluster.run_availability(
        replicas=2, clients=4, total_requests=20, seed=0,
    )
    again = fig5_cluster.run_availability(
        replicas=2, clients=4, total_requests=20, seed=0,
    )
    assert result.summary() == again.summary()
    assert result.availability == 1.0
    assert result.meets_target(0.9)
    assert result.killed_replica is not None
    assert len(result.survivors) == 1
    assert result.reconnects == result.moved_sessions >= 1
    assert "killed" in fig5_cluster.format_availability(result)


def test_balanced_session_ids_spread_lanes_evenly():
    for replicas in (1, 2, 4):
        ids = fig5_cluster._balanced_session_ids(replicas, 16)
        assert len(ids) == len(set(ids)) == 16
        from repro.core.cluster import HashRing

        ring = HashRing([f"replica-{i}" for i in range(replicas)],
                        vnodes=64)
        counts = {}
        for session_id in ids:
            owner = ring.route(session_id)
            counts[owner] = counts.get(owner, 0) + 1
        assert set(counts.values()) == {16 // replicas}


def test_scaling_sweep_reports_per_replica_shape():
    # A deliberately tiny wall-clock run: one rate, short window — this
    # asserts the harness's bookkeeping, not the performance numbers
    # (tools/bench_smoke.sh gates those).
    result = fig5_cluster.run_scaling(
        replica_counts=(1, 2), rates=(30,), duration_seconds=0.1,
        lanes=4,
    )
    assert [sweep.replicas for sweep in result.sweeps] == [1, 2]
    for sweep in result.sweeps:
        assert sum(sweep.sessions_per_replica.values()) == 4
        assert len(sweep.points) == 1
        assert sweep.points[0].requests > 0
        assert sweep.peak_rps > 0
    summary = result.summary()
    assert set(summary["sweeps"]) == {"replicas_1", "replicas_2"}
    assert "scaling_ratio" in summary
    assert result.sweep(2).replicas == 2
    assert "cluster mode" in fig5_cluster.format_table(result)
