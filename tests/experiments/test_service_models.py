"""The Figure 5 service models: derivations and orderings."""

import pytest

from repro.experiments import service_models as sm


def test_xsearch_service_includes_transition_costs():
    """The X-Search service time is built from the SGX cost model: a
    batch-amortised request ecall plus two ocalls on a pooled keep-alive
    engine connection."""
    from repro.sgx.runtime import (
        DEFAULT_CLOCK_HZ,
        DEFAULT_ECALL_CYCLES,
        DEFAULT_OCALL_CYCLES,
    )

    transitions = (
        DEFAULT_ECALL_CYCLES / sm.XSEARCH_BATCH_RECORDS
        + sm.XSEARCH_POOLED_OCALLS_PER_REQUEST * DEFAULT_OCALL_CYCLES
    ) / DEFAULT_CLOCK_HZ
    assert sm.XSEARCH_SERVICE.median_seconds > transitions
    assert sm.XSEARCH_SERVICE.median_seconds == pytest.approx(
        transitions + sm._XSEARCH_COMPUTE_SECONDS
    )


def test_pooled_transitions_beat_the_baseline():
    """Pooling + batching must cut the metered per-request transition
    time by at least 2× versus the per-request-connect baseline."""
    pooled = sm._XSEARCH_TRANSITION_SECONDS
    baseline = sm.XSEARCH_BASELINE_TRANSITION_SECONDS
    assert baseline >= 2 * pooled


def test_capacity_ordering_matches_the_paper():
    stations = [
        sm.xsearch_station(),
        sm.peas_station(),
        sm.tor_station(),
        sm.rac_station(),
        sm.dissent_station(),
    ]
    capacities = [station.capacity_rps for station in stations]
    assert capacities == sorted(capacities, reverse=True)
    # Order-of-magnitude gaps between the paper's three systems.
    assert capacities[0] > 10 * capacities[1] > 100 * capacities[2]


def test_capacities_near_paper_saturation_points():
    assert 25_000 <= sm.xsearch_station().capacity_rps <= 40_000
    assert 900 <= sm.peas_station().capacity_rps <= 1_500
    assert 90 <= sm.tor_station().capacity_rps <= 150


def test_proxy_service_seconds_positive():
    assert 0 < sm.xsearch_proxy_service_seconds() < 0.001


def test_rac_and_dissent_below_tor():
    assert sm.rac_station().capacity_rps < sm.tor_station().capacity_rps
    assert sm.dissent_station().capacity_rps < sm.rac_station().capacity_rps
