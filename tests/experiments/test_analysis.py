"""The analytical adversary-model comparison, cross-checked empirically."""

import pytest

from repro.analysis import (
    SYSTEM_MODELS,
    dominates,
    format_comparison_table,
    obfuscation_never_hurts,
    ranked_by_privacy,
    uninformed_guess_rate,
)
from repro.errors import ExperimentError


def test_every_discussed_system_is_modelled():
    assert set(SYSTEM_MODELS) == {
        "Direct", "TrackMeNot", "GooPIR", "QueryScrambler", "Tor", "RAC",
        "Dissent", "PEAS", "PIR-engine", "X-Search",
    }


def test_xsearch_dominates_its_competitors():
    """The paper's central analytical claim: X-Search Pareto-dominates
    every system that offers any protection at all."""
    xsearch = SYSTEM_MODELS["X-Search"]
    for name in ("Tor", "PEAS", "TrackMeNot", "GooPIR", "RAC", "Dissent"):
        assert dominates(xsearch, SYSTEM_MODELS[name]), name


def test_nothing_dominates_xsearch():
    xsearch = SYSTEM_MODELS["X-Search"]
    for name, model in SYSTEM_MODELS.items():
        if name != "X-Search":
            assert not dominates(model, xsearch), name


def test_peas_beats_tor_analytically():
    # PEAS adds indistinguishability over Tor but loses Byzantine
    # tolerance claims — neither dominates; PEAS scores higher overall.
    peas, tor = SYSTEM_MODELS["PEAS"], SYSTEM_MODELS["Tor"]
    assert peas.privacy_score() > tor.privacy_score()


def test_ranking_puts_xsearch_first():
    assert ranked_by_privacy()[0].name == "X-Search"


def test_table_renders_all_rows():
    table = format_comparison_table()
    for name in SYSTEM_MODELS:
        assert name in table
    assert "byz-proxy" in table


def test_dominance_is_irreflexive():
    for model in SYSTEM_MODELS.values():
        assert not dominates(model, model)


# ---------------------------------------------------------------------------
# Guessing bounds vs the empirical Figure 3
# ---------------------------------------------------------------------------

def test_uninformed_guess_rate():
    assert uninformed_guess_rate(0, 0.4) == 0.4
    assert uninformed_guess_rate(3, 0.4) == pytest.approx(0.1)
    with pytest.raises(ExperimentError):
        uninformed_guess_rate(-1, 0.4)
    with pytest.raises(ExperimentError):
        uninformed_guess_rate(1, 1.4)


def test_fig3_rates_respect_the_analytical_relations(fast_context):
    """Empirical cross-check: measured rates never exceed the k=0 base
    rate, and X-Search approaches the uninformed-guess floor."""
    from repro.experiments import fig3_reidentification

    result = fig3_reidentification.run(
        fast_context, k_values=(0, 3), per_user=2
    )
    base = result.xsearch_rates[0]
    protected = result.xsearch_rates[1]
    assert obfuscation_never_hurts(base, protected)
    floor = uninformed_guess_rate(3, base)
    # The measured rate sits between the perfect-fakes floor and the
    # unprotected base rate.
    assert floor * 0.5 <= protected <= base
