"""The loopback serving harness: deterministic digests, sane points."""

from __future__ import annotations

from repro.experiments import fig5_server

_KWARGS = dict(max_workers=2, rates=(40, 160), duration_seconds=0.25,
               seed=5, k=2)


def test_virtual_mode_same_seed_is_byte_identical():
    first = fig5_server.run_virtual(**_KWARGS)
    second = fig5_server.run_virtual(**_KWARGS)
    assert first.digest() == second.digest()
    assert first.trace_digest == second.trace_digest


def test_virtual_mode_shape_and_invariants():
    result = fig5_server.run_virtual(**_KWARGS)
    assert result.mode == "server-virtual"
    assert result.max_workers == 2
    assert [point.offered_rps for point in result.points] == [40, 160]
    assert all(point.requests > 0 for point in result.points)
    assert all(point.ecalls > 0 for point in result.points)
    # The serving layer's spans ride the same recorder, and the trace
    # oracles (balanced boundaries, host-plaintext, single-outcome)
    # hold with the wire in the pipeline.
    assert result.trace_digest["invariants_ok"]
    assert result.trace_digest["span_counts"].get("server.dispatch")
    assert result.trace_digest["span_counts"].get("client.call")


def test_different_seed_changes_digest():
    first = fig5_server.run_virtual(**_KWARGS)
    other = fig5_server.run_virtual(**{**_KWARGS, "seed": 6})
    assert first.digest() != other.digest()


def test_format_table_renders():
    result = fig5_server.run_virtual(**_KWARGS)
    table = fig5_server.format_table(result)
    assert "server-virtual" in table
