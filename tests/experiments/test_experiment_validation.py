"""Input validation and small invariants of the experiment modules."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    fig1_fake_queries,
    fig3_reidentification,
    fig4_accuracy,
    fig6_memory,
    fig7_round_trip,
)


def test_fig1_rejects_zero_fakes(fast_context):
    with pytest.raises(ExperimentError):
        fig1_fake_queries.run(fast_context, n_fakes=0)


def test_fig1_can_exclude_xsearch_series(fast_context):
    result = fig1_fake_queries.run(
        fast_context, n_fakes=20, include_xsearch=False
    )
    assert set(result.series) == {"PEAS", "TMN"}


def test_fig3_rejects_empty_k_values(fast_context):
    with pytest.raises(ExperimentError):
        fig3_reidentification.run(fast_context, k_values=())


def test_fig3_improvement_computation():
    result = fig3_reidentification.Fig3Result(
        k_values=(1,), xsearch_rates=[0.15], peas_rates=[0.20], n_queries=10
    )
    assert result.improvement(0) == pytest.approx(0.25)
    zero = fig3_reidentification.Fig3Result(
        k_values=(1,), xsearch_rates=[0.0], peas_rates=[0.0], n_queries=10
    )
    assert zero.improvement(0) == 0.0


def test_fig4_validates_parameters(fast_context):
    with pytest.raises(ExperimentError):
        fig4_accuracy.run(fast_context, queries_per_k=0)
    with pytest.raises(ExperimentError):
        fig4_accuracy.run(fast_context, depth=0)


def test_fig6_validates_parameters():
    with pytest.raises(ExperimentError):
        fig6_memory.run(max_queries=0)
    with pytest.raises(ExperimentError):
        fig6_memory.run(max_queries=100, samples=0)


def test_fig7_validates_parameters():
    with pytest.raises(ExperimentError):
        fig7_round_trip.run(n_queries=0)


def test_fig7_cdf_accessor():
    result = fig7_round_trip.run(n_queries=20)
    cdf = result.cdf("Tor", points=10)
    assert cdf[-1][1] == 1.0
