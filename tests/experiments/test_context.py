"""Shared experiment context."""

from repro.experiments.context import ContextConfig, ExperimentContext


def test_fast_preset_is_smaller():
    fast = ContextConfig.fast()
    full = ContextConfig()
    assert fast.n_users < full.n_users
    assert fast.focus_users < full.focus_users


def test_context_builds_consistent_state(fast_context):
    assert len(fast_context.focus_users) == fast_context.config.focus_users
    assert set(fast_context.profiles) == set(fast_context.focus_users)
    assert fast_context.attack.known_users == sorted(fast_context.focus_users)
    assert len(fast_context.train) + len(fast_context.test) == len(
        fast_context.log
    )


def test_context_is_lazy_and_cached(fast_context):
    assert fast_context.engine is fast_context.engine
    assert fast_context.cooccurrence is fast_context.cooccurrence
    assert fast_context.attack is fast_context.attack


def test_sampling_is_deterministic(fast_context):
    a = fast_context.sample_test_queries(per_user=1)
    b = fast_context.sample_test_queries(per_user=1)
    assert a == b
    assert len(a) <= fast_context.config.focus_users


def test_sampling_offset_changes_sample(fast_context):
    a = fast_context.sample_random_test_texts(10, seed_offset=0)
    b = fast_context.sample_random_test_texts(10, seed_offset=1)
    assert a != b
    assert len(a) == 10
