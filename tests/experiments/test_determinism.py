"""Reproducibility guarantees: everything is deterministic from the seed.

This repository is a reproduction artifact — its own results must be
exactly re-derivable.  Same seed → bit-identical experiment outputs;
different seed → different dataset (no hidden global state).
"""

from repro.experiments import fig3_reidentification, fig5_throughput_latency, fig7_round_trip
from repro.experiments.context import ContextConfig, ExperimentContext


def tiny_config(seed=42):
    return ContextConfig(n_users=60, mean_queries_per_user=40.0,
                         focus_users=15, queries_per_user=1, seed=seed)


def test_fig3_deterministic_across_fresh_contexts():
    a = fig3_reidentification.run(
        ExperimentContext(tiny_config()), k_values=(0, 2)
    )
    b = fig3_reidentification.run(
        ExperimentContext(tiny_config()), k_values=(0, 2)
    )
    assert a.xsearch_rates == b.xsearch_rates
    assert a.peas_rates == b.peas_rates


def test_fig3_seed_changes_results():
    a = fig3_reidentification.run(
        ExperimentContext(tiny_config(seed=1)), k_values=(0,)
    )
    b = fig3_reidentification.run(
        ExperimentContext(tiny_config(seed=2)), k_values=(0,)
    )
    # Different synthetic logs: the base rates should not coincide exactly
    # AND be derived from identical query sets.
    context_a = ExperimentContext(tiny_config(seed=1))
    context_b = ExperimentContext(tiny_config(seed=2))
    assert [q.text for q in context_a.log][:20] != \
        [q.text for q in context_b.log][:20]


def test_fig5_deterministic():
    a = fig5_throughput_latency.run(duration_seconds=0.3)
    b = fig5_throughput_latency.run(duration_seconds=0.3)
    for name in a.series:
        assert [p.p50_latency for p in a.series[name]] == \
            [p.p50_latency for p in b.series[name]]


def test_fig7_deterministic():
    a = fig7_round_trip.run(n_queries=30, seed=5)
    b = fig7_round_trip.run(n_queries=30, seed=5)
    for scenario in ("Direct", "X-Search", "Tor"):
        assert a.median(scenario) == b.median(scenario)
        assert a.p99(scenario) == b.p99(scenario)


def test_dataset_identical_across_processes_style_rebuild():
    """The context rebuilds the exact same adversary state from a seed."""
    a = ExperimentContext(tiny_config())
    b = ExperimentContext(tiny_config())
    assert a.focus_users == b.focus_users
    assert a.sample_test_queries() == b.sample_test_queries()
    user = a.focus_users[0]
    assert a.profiles[user].query_texts == b.profiles[user].query_texts
