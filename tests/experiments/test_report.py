"""The markdown report generator and its CLI entry point."""

import pytest

from repro.experiments import report, runner


@pytest.fixture(scope="module")
def report_text():
    return report.generate_report(fast=True)


def test_report_contains_every_section(report_text):
    for figure in ("Figure 1", "Figure 3", "Figure 4", "Figure 5",
                   "Figure 6", "Figure 7"):
        assert figure in report_text
    assert "Adversary-model comparison" in report_text
    assert "X-Search" in report_text


def test_report_tables_are_fenced(report_text):
    assert report_text.count("```") % 2 == 0
    assert report_text.count("```") >= 14  # 7 sections, open+close


def test_report_cli_writes_file(tmp_path):
    output = tmp_path / "report.md"
    assert runner.main(["report", "--fast", "--output", str(output)]) == 0
    content = output.read_text(encoding="utf-8")
    assert content.startswith("# X-Search reproduction report")
    assert "Figure 7" in content
