"""Every figure module at CI scale: the paper's qualitative conclusions.

These are the repository's reproduction guarantees: each test asserts the
*shape* of a paper result (who wins, what is monotone, where thresholds
sit), not absolute values.
"""

import pytest

from repro.experiments import (
    fig1_fake_queries,
    fig3_reidentification,
    fig4_accuracy,
    fig5_throughput_latency,
    fig6_memory,
    fig7_round_trip,
)


@pytest.fixture(scope="module")
def fig1(fast_context):
    return fig1_fake_queries.run(fast_context, n_fakes=120)


@pytest.fixture(scope="module")
def fig3(fast_context):
    return fig3_reidentification.run(fast_context, k_values=(0, 1, 3))


@pytest.fixture(scope="module")
def fig4(fast_context):
    return fig4_accuracy.run(
        fast_context, k_values=(0, 2, 5), queries_per_k=20
    )


def ccdf_at(result, name, threshold):
    index = result.thresholds.index(threshold)
    return result.series[name][index]


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

def test_fig1_most_fakes_are_original(fig1):
    """PEAS and TMN fakes almost never equal a real query exactly."""
    assert ccdf_at(fig1, "PEAS", 1.0) < 0.35
    assert ccdf_at(fig1, "TMN", 1.0) < 0.05


def test_fig1_tmn_far_from_real_traffic(fig1):
    # RSS-derived fakes are out-of-distribution: most have low similarity.
    assert ccdf_at(fig1, "TMN", 0.5) < 0.5


def test_fig1_xsearch_fakes_are_real_queries(fig1):
    assert ccdf_at(fig1, "X-Search", 1.0) == 1.0


def test_fig1_ccdf_monotone_non_increasing(fig1):
    for name, values in fig1.series.items():
        assert all(a >= b for a, b in zip(values, values[1:])), name


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------

def test_fig3_unprotected_rate_substantial(fig3):
    assert fig3.xsearch_rates[0] > 0.25  # ~40% in the paper


def test_fig3_obfuscation_helps(fig3):
    assert fig3.xsearch_rates[1] < fig3.xsearch_rates[0]
    assert fig3.xsearch_rates[2] < fig3.xsearch_rates[0]


def test_fig3_xsearch_beats_peas(fig3):
    for index, k in enumerate(fig3.k_values):
        if k == 0:
            continue
        assert fig3.xsearch_rates[index] <= fig3.peas_rates[index], k


def test_fig3_k0_equivalent_for_both(fig3):
    assert fig3.xsearch_rates[0] == fig3.peas_rates[0]


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------

def test_fig4_k0_is_lossless(fig4):
    assert fig4.precisions[0] == pytest.approx(1.0)
    assert fig4.recalls[0] == pytest.approx(1.0)


def test_fig4_above_08_at_k2(fig4):
    index = fig4.k_values.index(2)
    assert fig4.precisions[index] > 0.8
    assert fig4.recalls[index] > 0.8


def test_fig4_degrades_slowly(fig4):
    assert fig4.precisions[-1] > 0.6
    assert fig4.recalls[-1] > 0.6
    assert fig4.precisions[0] >= fig4.precisions[-1]


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig5():
    return fig5_throughput_latency.run(duration_seconds=0.5)


def test_fig5_throughput_ordering(fig5):
    assert fig5.ordering_holds()


def test_fig5_xsearch_sustains_tens_of_thousands(fig5):
    assert fig5.saturation["X-Search"] >= 20_000


def test_fig5_peas_saturates_around_1k(fig5):
    assert 500 <= fig5.saturation["PEAS"] <= 2_000


def test_fig5_tor_saturates_around_100(fig5):
    assert 50 <= fig5.saturation["Tor"] <= 200


def test_fig5_latency_explodes_past_saturation(fig5):
    for name, points in fig5.series.items():
        below = [p for p in points
                 if p.offered_rps <= fig5.saturation[name]]
        above = [p for p in points
                 if p.offered_rps > 1.2 * fig5.saturation[name]]
        if below and above:
            assert min(p.p50_latency for p in above) > \
                max(p.p50_latency for p in below), name


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig6():
    return fig6_memory.run(max_queries=50_000, samples=5)


def test_fig6_memory_grows_linearly(fig6):
    ys = fig6.occupancy_bytes
    xs = fig6.queries_stored
    # Linearity: per-query cost stable within 20% across checkpoints.
    per_query = [y / x for x, y in zip(xs[1:], ys[1:])]
    assert max(per_query) < 1.2 * min(per_query)


def test_fig6_epc_fits_over_a_million_queries(fig6):
    assert fig6.queries_fitting_epc > 1_000_000


def test_fig6_usable_epc_is_90mb(fig6):
    assert fig6.usable_epc_bytes == 90 * 1024 * 1024


def test_fig6_unique_query_stream_is_unique():
    stream = fig6_memory.unique_query_stream(seed=1)
    texts = [next(stream) for _ in range(5000)]
    assert len(set(texts)) == len(texts)


# ---------------------------------------------------------------------------
# Figure 7
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig7():
    return fig7_round_trip.run(n_queries=300, seed=4)


def test_fig7_ordering(fig7):
    assert fig7.median("Direct") < fig7.median("X-Search") < fig7.median("Tor")


def test_fig7_xsearch_usable(fig7):
    assert 0.4 < fig7.median("X-Search") < 0.75
    assert fig7.p99("X-Search") < 1.1


def test_fig7_tor_exceeds_usability_margins(fig7):
    assert fig7.median("Tor") > 0.9
    assert fig7.p99("Tor") > 1.8


def test_fig7_cdf_shape(fig7):
    cdf = fig7.cdf("X-Search")
    ys = [y for _, y in cdf]
    assert ys == sorted(ys)
    assert ys[-1] == 1.0
