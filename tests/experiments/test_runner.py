"""The xsearch-experiments CLI."""

import pytest

from repro.experiments import runner


def test_runner_lists_all_figures():
    assert set(runner.EXPERIMENTS) == {
        "fig1", "fig3", "fig4", "fig5", "fig5a", "fig5c", "fig6", "fig7"
    }


def test_runner_executes_one_figure(capsys):
    assert runner.main(["fig7", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "X-Search" in out


def test_runner_executes_fig6(capsys):
    assert runner.main(["fig6", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "EPC" in out


def test_runner_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        runner.main(["fig2"])  # the architecture diagram is not a benchmark


def test_format_tables_render():
    from repro.experiments import fig5_throughput_latency, fig7_round_trip

    fig5 = fig5_throughput_latency.run(duration_seconds=0.3)
    assert "req/s" in fig5_throughput_latency.format_table(fig5)
    fig7 = fig7_round_trip.run(n_queries=20)
    assert "median" in fig7_round_trip.format_table(fig7)
