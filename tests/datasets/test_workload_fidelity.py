"""Statistical fidelity of the synthetic workload (DESIGN.md §1 claims).

The substitution argument for the AOL log rests on named statistical
properties; these tests pin them so future changes to the generator
cannot silently break the calibration.
"""

import math
from collections import Counter

from repro.textutils import tokenize


def test_term_frequencies_are_heavy_tailed(small_log):
    """Term frequencies follow a Zipf-like rank/frequency decay."""
    counts = Counter()
    for query in small_log:
        counts.update(tokenize(query.text))
    frequencies = sorted(counts.values(), reverse=True)
    assert len(frequencies) > 200
    # Top-decile mass dominates: classic heavy tail.
    top = sum(frequencies[: len(frequencies) // 10])
    assert top > 0.40 * sum(frequencies)
    # Rank-10 vs rank-100 frequency ratio is large.
    assert frequencies[9] > 3 * frequencies[99]


def test_activity_distribution_is_pareto_like(small_log):
    activities = sorted(
        (len(small_log.queries_of(u)) for u in small_log.users),
        reverse=True,
    )
    total = sum(activities)
    top_10pct = sum(activities[: max(1, len(activities) // 10)])
    assert top_10pct > 0.25 * total  # the most active users dominate


def test_sessions_have_short_interarrival(small_log):
    """Within-session gaps are seconds-to-minutes, between sessions hours:
    a bimodal inter-arrival distribution."""
    user = small_log.users[0]
    times = [q.timestamp for q in small_log.queries_of(user)]
    gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
    short = sum(1 for g in gaps if g <= 150.0)
    long = sum(1 for g in gaps if g > 3600.0)
    assert short > 0 and long > 0
    assert short > long * 0.2


def test_users_share_vocabulary_mass(small_log):
    """The shared background mass the X-Search fakes rely on: any two
    active users' term sets overlap."""
    users = small_log.most_active_users(6)
    vocabularies = []
    for user in users:
        tokens = set()
        for query in small_log.queries_of(user):
            tokens.update(tokenize(query.text))
        vocabularies.append(tokens)
    overlapping_pairs = 0
    total_pairs = 0
    for i in range(len(vocabularies)):
        for j in range(i + 1, len(vocabularies)):
            total_pairs += 1
            if vocabularies[i] & vocabularies[j]:
                overlapping_pairs += 1
    assert overlapping_pairs == total_pairs


def test_users_remain_distinguishable(small_log):
    """The counterweight: despite shared mass, users keep private signal —
    each active user has terms rarely used by the others."""
    users = small_log.most_active_users(6)
    counters = []
    for user in users:
        counter = Counter()
        for query in small_log.queries_of(user):
            counter.update(tokenize(query.text))
        counters.append(counter)
    for index, counter in enumerate(counters):
        others = Counter()
        for j, other in enumerate(counters):
            if j != index:
                others.update(other)
        top_terms = [t for t, _ in counter.most_common(15)]
        distinctive = [
            t for t in top_terms
            if counter[t] > 3 * max(1, others.get(t, 0))
        ]
        assert distinctive, f"user {users[index]} has no private signal"


def test_query_lengths_match_web_search(small_log):
    """Mean query length in the 1-4 word range, like real search logs."""
    lengths = [len(tokenize(q.text)) for q in small_log]
    mean = sum(lengths) / len(lengths)
    assert 1.0 <= mean <= 4.0
    assert max(lengths) <= 8
