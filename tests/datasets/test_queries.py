"""Query log types and the train/test split methodology."""

import pytest

from repro.datasets.queries import Query, QueryLog, train_test_split
from repro.errors import DatasetError


def q(qid, user, text, t):
    return Query(query_id=qid, user_id=user, text=text, timestamp=t)


@pytest.fixture()
def log():
    return QueryLog([
        q(0, "alice", "hotel rome", 30.0),
        q(1, "alice", "cheap flights", 10.0),
        q(2, "bob", "diabetes", 20.0),
        q(3, "alice", "rome weather", 50.0),
        q(4, "bob", "diabetes diet", 40.0),
        q(5, "carol", "gardening", 5.0),
    ])


def test_chronological_order(log):
    times = [query.timestamp for query in log]
    assert times == sorted(times)


def test_len_and_indexing(log):
    assert len(log) == 6
    assert log[0].text == "gardening"


def test_users_sorted_by_activity(log):
    assert log.users[0] == "alice"  # 3 queries
    assert set(log.users) == {"alice", "bob", "carol"}


def test_queries_of_user(log):
    texts = [query.text for query in log.queries_of("bob")]
    assert texts == ["diabetes", "diabetes diet"]
    with pytest.raises(DatasetError):
        log.queries_of("nobody")


def test_most_active_users(log):
    assert log.most_active_users(2) == ["alice", "bob"]


def test_restricted_to(log):
    sub = log.restricted_to(["carol"])
    assert len(sub) == 1
    assert sub[0].user_id == "carol"


def test_unique_texts_first_seen_order():
    log = QueryLog([
        q(0, "a", "x", 1.0), q(1, "a", "y", 2.0), q(2, "b", "x", 3.0),
    ])
    assert log.unique_texts() == ["x", "y"]


def test_empty_query_rejected():
    with pytest.raises(DatasetError):
        q(0, "a", "", 0.0)


def test_split_fractions(small_log):
    train, test = train_test_split(small_log)
    assert len(train) + len(test) == len(small_log)
    ratio = len(train) / len(small_log)
    assert 0.60 < ratio < 0.72  # two thirds, modulo per-user rounding


def test_split_is_chronological_per_user(small_log):
    train, test = train_test_split(small_log)
    for user in small_log.users[:10]:
        train_times = [q.timestamp for q in train.queries_of(user)]
        test_times = [q.timestamp for q in test.queries_of(user)]
        assert max(train_times) <= min(test_times)


def test_split_keeps_every_user_on_both_sides(small_log):
    train, test = train_test_split(small_log)
    assert set(train.users) == set(small_log.users)
    assert set(test.users) == set(small_log.users)


def test_split_fraction_validation(log):
    with pytest.raises(DatasetError):
        train_test_split(log, train_fraction=0.0)
    with pytest.raises(DatasetError):
        train_test_split(log, train_fraction=1.0)
