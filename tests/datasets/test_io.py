"""AOL-format TSV loading and saving."""

import io

import pytest

from repro.datasets.io import load_aol_tsv, roundtrip_equal, save_aol_tsv
from repro.errors import DatasetError

SAMPLE = (
    "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n"
    "142\thotel rome\t2006-03-01 07:17:12\t1\thttp://a.example.com\n"
    "142\tcheap flights\t2006-03-05 10:00:00\t\t\n"
    "217\tdiabetes symptoms\t2006-03-02 23:59:59\t\t\n"
    "217\t-\t2006-03-03 00:00:01\t\t\n"
    "217\t\t2006-03-03 00:00:02\t\t\n"
)


def test_load_sample():
    log = load_aol_tsv(io.StringIO(SAMPLE))
    assert len(log) == 3  # '-' and empty rows skipped
    assert set(log.users) == {"142", "217"}
    assert [q.text for q in log.queries_of("142")] == [
        "hotel rome", "cheap flights"
    ]


def test_timestamps_rebased_and_ordered():
    log = load_aol_tsv(io.StringIO(SAMPLE))
    times = [q.timestamp for q in log]
    assert times[0] == 0.0
    assert times == sorted(times)
    # 2006-03-05 10:00 is 4 days + 2h43m after 03-01 07:17.
    flights = next(q for q in log if q.text == "cheap flights")
    assert flights.timestamp == pytest.approx(4 * 86400 + 2 * 3600 + 42 * 60
                                              + 48)


def test_max_queries_cap():
    log = load_aol_tsv(io.StringIO(SAMPLE), max_queries=2)
    assert len(log) == 2


def test_bad_header_rejected():
    with pytest.raises(DatasetError):
        load_aol_tsv(io.StringIO("Wrong\tHeader\tHere\nx\ty\tz\n"))


def test_bad_time_rejected():
    bad = ("AnonID\tQuery\tQueryTime\n"
           "1\thotel\tnot-a-time\n")
    with pytest.raises(DatasetError):
        load_aol_tsv(io.StringIO(bad))


def test_short_row_rejected():
    bad = "AnonID\tQuery\tQueryTime\n1\tonly-two-fields\n"
    with pytest.raises(DatasetError):
        load_aol_tsv(io.StringIO(bad))


def test_empty_file_rejected():
    empty = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n"
    with pytest.raises(DatasetError):
        load_aol_tsv(io.StringIO(empty))


def test_save_load_roundtrip(small_log, tmp_path):
    path = tmp_path / "log.tsv"
    rows = save_aol_tsv(small_log, path)
    assert rows == len(small_log)
    loaded = load_aol_tsv(path)
    assert roundtrip_equal(small_log, loaded)


def test_file_path_loading(tmp_path):
    path = tmp_path / "sample.tsv"
    path.write_text(SAMPLE, encoding="utf-8")
    log = load_aol_tsv(str(path))
    assert len(log) == 3


def test_loaded_log_runs_the_pipeline(tmp_path, small_log):
    """A loaded log drops into the standard experiment methodology."""
    from repro.attacks import SimAttack, build_profiles
    from repro.datasets import train_test_split

    path = tmp_path / "log.tsv"
    save_aol_tsv(small_log, path)
    log = load_aol_tsv(path)
    train, test = train_test_split(log)
    users = train.most_active_users(5)
    attack = SimAttack(build_profiles(train, users))
    outcome = attack.attack([test.queries_of(users[0])[0].text])
    assert outcome is not None
