"""Synthetic AOL-style workload generator."""

import pytest

from repro.datasets.generator import AolStyleGenerator, GeneratorConfig, generate_log
from repro.datasets.topics import TopicModel
from repro.errors import DatasetError
from repro.textutils import tokenize


def test_deterministic_for_seed():
    a = generate_log(seed=5, n_users=20)
    b = generate_log(seed=5, n_users=20)
    assert len(a) == len(b)
    assert [(q.user_id, q.text, q.timestamp) for q in a] == [
        (q.user_id, q.text, q.timestamp) for q in b
    ]


def test_different_seeds_differ():
    a = generate_log(seed=5, n_users=20)
    b = generate_log(seed=6, n_users=20)
    assert [q.text for q in a] != [q.text for q in b]


def test_user_count(small_log):
    assert len(small_log.users) == 60


def test_minimum_activity_respected(small_log):
    config = GeneratorConfig()
    for user in small_log.users:
        assert len(small_log.queries_of(user)) >= config.min_queries_per_user


def test_activity_is_heavy_tailed(small_log):
    activities = sorted(
        (len(small_log.queries_of(u)) for u in small_log.users), reverse=True
    )
    assert activities[0] >= 4 * activities[len(activities) // 2]


def test_queries_use_known_vocabulary(small_log):
    vocabulary = TopicModel.default().all_terms()
    for query in list(small_log)[:200]:
        for token in tokenize(query.text):
            assert token in vocabulary, token


def test_timestamps_within_trace_window(small_log):
    horizon = (GeneratorConfig().trace_days + 1) * 86_400
    for query in small_log:
        assert 0 <= query.timestamp <= horizon


def test_users_repeat_queries(small_log):
    # The repeat model must produce duplicate texts for active users.
    user = small_log.users[0]
    texts = [q.text for q in small_log.queries_of(user)]
    assert len(set(texts)) < len(texts)


def test_users_have_topical_focus(small_log):
    # A user's queries should reuse a limited vocabulary, not the whole one.
    user = small_log.users[0]
    tokens = set()
    for query in small_log.queries_of(user):
        tokens.update(tokenize(query.text))
    assert len(tokens) < 150


def test_invalid_user_count_rejected():
    with pytest.raises(DatasetError):
        AolStyleGenerator(GeneratorConfig(n_users=0), seed=1).generate()
