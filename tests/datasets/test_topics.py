"""Topic model and Zipf sampling."""

import random

import pytest

from repro.datasets.topics import (
    BACKGROUND_TERMS,
    MODIFIERS,
    TOPIC_TERMS,
    TopicModel,
    zipf_rank,
)
from repro.errors import DatasetError


def test_topic_inventory():
    assert len(TOPIC_TERMS) >= 25
    for topic, words in TOPIC_TERMS.items():
        assert len(words) >= 20, topic
        assert len(set(words)) == len(words), f"duplicates in {topic}"


def test_default_model_frozen_view():
    model = TopicModel.default()
    assert model.topics == tuple(sorted(TOPIC_TERMS))
    assert model.topic_terms("travel") == tuple(TOPIC_TERMS["travel"])


def test_unknown_topic_rejected():
    with pytest.raises(DatasetError):
        TopicModel.default().topic_terms("nonsense")


def test_sample_term_membership():
    model = TopicModel.default()
    rng = random.Random(3)
    for _ in range(50):
        assert model.sample_term("health", rng) in TOPIC_TERMS["health"]


def test_all_terms_superset():
    terms = TopicModel.default().all_terms()
    assert set(MODIFIERS) <= terms
    assert set(BACKGROUND_TERMS) <= terms
    assert "hotel" in terms


def test_zipf_rank_bounds():
    rng = random.Random(1)
    ranks = [zipf_rank(10, rng) for _ in range(500)]
    assert min(ranks) >= 0 and max(ranks) <= 9


def test_zipf_rank_skew():
    rng = random.Random(1)
    ranks = [zipf_rank(20, rng, s=1.5) for _ in range(2000)]
    low = sum(1 for r in ranks if r < 5)
    high = sum(1 for r in ranks if r >= 15)
    assert low > 2 * high  # front ranks dominate


def test_zipf_rank_empty_rejected():
    with pytest.raises(DatasetError):
        zipf_rank(0, random.Random(1))
