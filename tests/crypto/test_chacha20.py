"""ChaCha20 against the RFC 8439 test vectors plus behavioural checks."""

import pytest

from repro.crypto.chacha20 import (
    BLOCK_SIZE,
    chacha20_block,
    chacha20_decrypt,
    chacha20_encrypt,
)
from repro.errors import CryptoError

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")


def test_block_function_rfc_vector():
    # RFC 8439 §2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:00:00:00:00,
    # counter 1.
    expected = bytes.fromhex(
        "10f1e7e4d13b5915500fdd1fa32071c4"
        "c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2"
        "b5129cd1de164eb9cbd083e8a2503c4e"
    )
    assert chacha20_block(RFC_KEY, 1, RFC_NONCE) == expected


def test_encrypt_rfc_vector():
    # RFC 8439 §2.4.2.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    expected = bytes.fromhex(
        "6e2e359a2568f98041ba0728dd0d6981"
        "e97e7aec1d4360c20a27afccfd9fae0b"
        "f91b65c5524733ab8f593dabcd62b357"
        "1639d624e65152ab8f530c359f0861d8"
        "07ca0dbf500d6a6156a38e088a22b65e"
        "52bc514d16ccf806818ce91ab7793736"
        "5af90bbf74a35be6b40b8eedf2785e42"
        "874d"
    )
    assert chacha20_encrypt(key, 1, nonce, plaintext) == expected


def test_encrypt_decrypt_involution():
    data = b"x-search private web search" * 10
    key = b"\x42" * 32
    nonce = b"\x01" * 12
    assert chacha20_decrypt(key, 7, nonce, chacha20_encrypt(key, 7, nonce, data)) == data


def test_empty_plaintext():
    assert chacha20_encrypt(b"\x00" * 32, 0, b"\x00" * 12, b"") == b""


def test_non_block_aligned_lengths():
    key, nonce = b"\x01" * 32, b"\x02" * 12
    for length in (1, BLOCK_SIZE - 1, BLOCK_SIZE, BLOCK_SIZE + 1, 200):
        data = bytes(range(256))[:length]
        out = chacha20_encrypt(key, 0, nonce, data)  # xlint: disable=dataflow
        assert len(out) == length
        # Deliberate same-(counter, nonce) second call: decryption.
        assert chacha20_encrypt(key, 0, nonce, out) == data  # xlint: disable=dataflow


def test_different_counters_differ():
    key, nonce = b"\x01" * 32, b"\x02" * 12
    assert chacha20_block(key, 0, nonce) != chacha20_block(key, 1, nonce)


def test_key_size_enforced():
    with pytest.raises(CryptoError):
        chacha20_block(b"short", 0, b"\x00" * 12)


def test_nonce_size_enforced():
    with pytest.raises(CryptoError):
        chacha20_block(b"\x00" * 32, 0, b"\x00" * 8)


def test_counter_range_enforced():
    with pytest.raises(CryptoError):
        chacha20_block(b"\x00" * 32, 1 << 32, b"\x00" * 12)
    with pytest.raises(CryptoError):
        chacha20_block(b"\x00" * 32, -1, b"\x00" * 12)


def test_rejects_non_bytes_plaintext():
    with pytest.raises(CryptoError):
        chacha20_encrypt(b"\x00" * 32, 0, b"\x00" * 12, "a string")
