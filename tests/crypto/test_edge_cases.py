"""Edge cases across crypto and shared utilities."""

import pytest

from repro.crypto.channel import ChannelEndpoint, establish_pair
from repro.errors import (
    AuthenticationError,
    CryptoError,
    EnclaveError,
    NetworkError,
    ProtocolError,
    ReproError,
    SealingError,
)
from repro.textutils import STOPWORDS, tokenize


def test_error_hierarchy():
    """Every library error is a ReproError; crypto errors nest correctly."""
    assert issubclass(AuthenticationError, CryptoError)
    assert issubclass(CryptoError, ReproError)
    assert issubclass(SealingError, EnclaveError)
    assert issubclass(EnclaveError, ReproError)
    assert issubclass(ProtocolError, ReproError)
    assert issubclass(NetworkError, ReproError)


def test_errors_catchable_at_base():
    with pytest.raises(ReproError):
        raise AuthenticationError("x")


def test_channel_counter_exhaustion():
    endpoint = ChannelEndpoint(send_key=b"\x01" * 32, recv_key=b"\x02" * 32)
    endpoint._send_counter = (1 << 64)  # past the 64-bit nonce space
    with pytest.raises(CryptoError, match="rekey"):
        endpoint.encrypt(b"too late")


def test_channel_large_payload_roundtrip():
    a, b = establish_pair()
    blob = bytes(range(256)) * 512  # 128 KiB
    assert b.decrypt(a.encrypt(blob)) == blob


def test_stopwords_are_lowercase_words():
    for word in STOPWORDS:
        assert word == word.lower()
        assert word.isalpha()


def test_tokenize_is_ascii_alnum():
    """The tokenizer splits on anything outside [a-z0-9] (the AOL log is
    ASCII); accented characters act as separators, never crash."""
    assert tokenize("héllo — wörld? café") == ["h", "llo", "w", "rld", "caf"]
    assert tokenize("☃ é") == []


def test_tokenize_numbers_and_mixed():
    assert tokenize("ipod30gb a1b2") == ["ipod30gb", "a1b2"]
