"""The TLS-like engine transport: certificates, handshake, records."""

import pytest

from repro.crypto.https import (
    Certificate,
    CertificateAuthority,
    TlsClient,
    TlsServer,
    decode_frames,
    encode_frame,
    verify_certificate,
)
from repro.crypto.rsa import RsaKeyPair
from repro.errors import AuthenticationError, CryptoError, ProtocolError


@pytest.fixture(scope="module")
def pki():
    ca = CertificateAuthority(1024)
    server_key = RsaKeyPair(1024)
    certificate = ca.issue("engine.example.com", server_key.public)
    return ca, server_key, certificate


def handshake(pki):
    ca, server_key, certificate = pki
    client = TlsClient(ca.public_key, "engine.example.com")
    server = TlsServer(certificate, server_key)
    server_hello = server.process_client_hello(client.client_hello())
    client.process_server_hello(server_hello)
    return client, server


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def test_frame_roundtrip():
    stream = encode_frame(b"one") + encode_frame(b"two")
    frames, rest = decode_frames(stream)
    assert frames == [b"one", b"two"]
    assert rest == b""


def test_partial_frames_buffered():
    stream = encode_frame(b"payload")
    frames, rest = decode_frames(stream[:5])
    assert frames == []
    assert rest == stream[:5]
    frames, rest = decode_frames(rest + stream[5:])
    assert frames == [b"payload"]


def test_oversized_frame_rejected():
    import struct

    with pytest.raises(ProtocolError):
        decode_frames(struct.pack(">I", 1 << 30) + b"x")


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------

def test_certificate_verifies(pki):
    ca, _, certificate = pki
    verify_certificate(certificate, ca.public_key, "engine.example.com")


def test_certificate_wrong_subject_rejected(pki):
    ca, _, certificate = pki
    with pytest.raises(AuthenticationError):
        verify_certificate(certificate, ca.public_key, "evil.example.com")


def test_certificate_wrong_ca_rejected(pki):
    _, _, certificate = pki
    other_ca = CertificateAuthority(1024)
    with pytest.raises(AuthenticationError):
        verify_certificate(
            certificate, other_ca.public_key, "engine.example.com"
        )


def test_certificate_encode_decode(pki):
    _, _, certificate = pki
    assert Certificate.decode(certificate.encode()) == certificate


def test_server_requires_matching_key(pki):
    _, _, certificate = pki
    with pytest.raises(CryptoError):
        TlsServer(certificate, RsaKeyPair(1024))


# ---------------------------------------------------------------------------
# Handshake + records
# ---------------------------------------------------------------------------

def test_handshake_and_records(pki):
    client, server = handshake(pki)
    assert client.is_established and server.is_established
    record = client.encrypt(b"GET /search?q=x HTTP/1.1\r\n\r\n")
    assert server.decrypt(record) == b"GET /search?q=x HTTP/1.1\r\n\r\n"
    reply = server.encrypt(b"HTTP/1.1 200 OK\r\n\r\n")
    assert client.decrypt(reply) == b"HTTP/1.1 200 OK\r\n\r\n"


def test_client_rejects_impostor_server(pki):
    """A MITM with a valid cert for another name cannot complete."""
    ca, _, _ = pki
    impostor_key = RsaKeyPair(1024)
    impostor_cert = ca.issue("evil.example.com", impostor_key.public)
    client = TlsClient(ca.public_key, "engine.example.com")
    server = TlsServer(impostor_cert, impostor_key)
    hello = server.process_client_hello(client.client_hello())
    with pytest.raises(AuthenticationError):
        client.process_server_hello(hello)


def test_client_rejects_unsigned_key_swap(pki):
    """Tampering with the server's ephemeral key breaks the transcript
    signature."""
    import base64
    import json

    ca, server_key, certificate = pki
    client = TlsClient(ca.public_key, "engine.example.com")
    server = TlsServer(certificate, server_key)
    hello = json.loads(
        server.process_client_hello(client.client_hello()).decode()
    )
    from repro.crypto.dh import DhKeyPair

    hello["public"] = base64.b64encode(
        DhKeyPair().public_bytes()
    ).decode("ascii")
    with pytest.raises(AuthenticationError):
        client.process_server_hello(json.dumps(hello).encode())


def test_records_before_handshake_rejected(pki):
    ca, server_key, certificate = pki
    client = TlsClient(ca.public_key, "engine.example.com")
    with pytest.raises(ProtocolError):
        client.encrypt(b"early")
    server = TlsServer(certificate, server_key)
    with pytest.raises(ProtocolError):
        server.encrypt(b"early")


def test_tampered_record_rejected(pki):
    client, server = handshake(pki)
    record = bytearray(client.encrypt(b"payload"))
    record[-1] ^= 1
    with pytest.raises(AuthenticationError):
        server.decrypt(bytes(record))


def test_malformed_hellos_rejected(pki):
    ca, server_key, certificate = pki
    server = TlsServer(certificate, server_key)
    with pytest.raises(ProtocolError):
        server.process_client_hello(b"junk")
    client = TlsClient(ca.public_key, "engine.example.com")
    with pytest.raises(ProtocolError):
        client.process_server_hello(b"junk")
