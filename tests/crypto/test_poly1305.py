"""Poly1305 against the RFC 8439 §2.5.2 vector plus edge cases."""

import pytest

from repro.crypto.poly1305 import constant_time_equal, poly1305_mac
from repro.errors import CryptoError


def test_rfc_vector():
    key = bytes.fromhex(
        "85d6be7857556d337f4452fe42d506a8"
        "0103808afb0db2fd4abff6af4149f51b"
    )
    message = b"Cryptographic Forum Research Group"
    expected = bytes.fromhex("a8061dc1305136c6c22b8baf0c0127a9")
    assert poly1305_mac(key, message) == expected


def test_empty_message():
    tag = poly1305_mac(b"\x01" * 32, b"")
    assert len(tag) == 16


def test_tag_depends_on_message():
    key = b"\x07" * 32
    assert poly1305_mac(key, b"aaa") != poly1305_mac(key, b"aab")


def test_tag_depends_on_key():
    assert poly1305_mac(b"\x01" * 32, b"m") != poly1305_mac(b"\x02" * 32, b"m")


def test_key_length_enforced():
    with pytest.raises(CryptoError):
        poly1305_mac(b"\x00" * 16, b"m")


def test_sixteen_byte_boundary_messages():
    key = b"\x05" * 32
    for length in (15, 16, 17, 31, 32, 33):
        assert len(poly1305_mac(key, b"z" * length)) == 16


def test_constant_time_equal_semantics():
    assert constant_time_equal(b"abc", b"abc")
    assert not constant_time_equal(b"abc", b"abd")
    assert not constant_time_equal(b"abc", b"abcd")
    assert constant_time_equal(b"", b"")
