"""RFC 8439 appendix vectors + channel key-confirmation properties.

The main body vectors (§2.3.2, §2.4.2, §2.5.2, §2.8.2) live in the
per-primitive test files; this file pins the *appendix* vectors the
suite did not yet cover — the Poly1305 one-time-key generation (§2.6.2)
and the independent AEAD decryption vector (A.5) — and then exercises
the channel's key-confirmation tags and the counter-desync regressions
behind the transactional-batch fix: a failed decrypt must never
advance a counter, and confirmation tags must consume none.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import aead_decrypt
from repro.crypto.chacha20 import chacha20_block
from repro.crypto.channel import establish_pair
from repro.errors import AuthenticationError


def test_poly1305_key_generation_vector():
    # RFC 8439 §2.6.2: the one-time Poly1305 key is the first 32 bytes
    # of the ChaCha20 block with counter 0.
    key = bytes(range(0x80, 0xA0))
    nonce = bytes.fromhex("000000000001020304050607")
    expected = bytes.fromhex(
        "8ad5a08b905f81cc815040274ab29471"
        "a833b637e3fd0da508dbb8e2fdd1a646"
    )
    assert chacha20_block(key, 0, nonce)[:32] == expected


def test_aead_decryption_vector_a5():
    # RFC 8439 A.5: an independent *decryption* vector (different key,
    # nonce and AAD than §2.8.2), proving the open path against a
    # ciphertext we never produced ourselves.
    key = bytes.fromhex(
        "1c9240a5eb55d38af333888604f6b5f0"
        "473917c1402b80099dca5cbc207075c0"
    )
    nonce = bytes.fromhex("000000000102030405060708")
    aad = bytes.fromhex("f33388860000000000004e91")
    ciphertext = bytes.fromhex(
        "64a0861575861af460f062c79be643bd5e805cfd345cf389f108670ac76c8cb2"
        "4c6cfc18755d43eea09ee94e382d26b0bdb7b73c321b0100d4f03b7f355894cf"
        "332f830e710b97ce98c8a84abd0b948114ad176e008d33bd60f982b1ff37c855"
        "9797a06ef4f0ef61c186324e2b3506383606907b6a7c02b0f9f6157b53c867e4"
        "b9166c767b804d46a59b5216cde7a4e99040c5a40433225ee282a1b0a06c523e"
        "af4534d7f83fa1155b0047718cbc546a0d072b04b3564eea1b422273f548271a"
        "0bb2316053fa76991955ebd63159434ecebb4e466dae5a1073a6727627097a10"
        "49e617d91d361094fa68f0ff77987130305beaba2eda04df997b714d6c6f2c29"
        "a6ad5cb4022b02709b"
    )
    tag = bytes.fromhex("eead9d67890cbb22392336fea1851f38")
    plaintext = aead_decrypt(key, nonce, ciphertext + tag, aad)
    assert plaintext.startswith(b"Internet-Drafts are draft documents")


# ----------------------------------------------------------------------
# Key confirmation (the handshake-splice detector)
# ----------------------------------------------------------------------
def test_confirmation_roundtrip():
    a, b = establish_pair()
    context = b"session-41"
    tag = b.confirmation(context)
    assert a.matches_confirmation(tag, context)
    a.verify_confirmation(tag, context)  # raising form agrees


def test_confirmation_binds_context():
    a, b = establish_pair()
    tag = b.confirmation(b"session-41")
    assert not a.matches_confirmation(tag, b"session-42")
    with pytest.raises(AuthenticationError):
        a.verify_confirmation(tag, b"session-42")


def test_spliced_handshakes_fail_confirmation():
    # The X-Search failover splice: the client keyed against one
    # enclave's handshake but the session landed on another.  The
    # confirmation tags must disagree.
    a, _ = establish_pair()
    _, other = establish_pair()
    assert not a.matches_confirmation(other.confirmation(b"sid"), b"sid")


def test_confirmation_consumes_no_counters():
    # The tag is hash-derived, not an AEAD record: exchanging any
    # number of confirmations must leave the record streams untouched.
    a, b = establish_pair()
    for _ in range(3):
        assert a.matches_confirmation(b.confirmation(b"s"), b"s")
        assert b.matches_confirmation(a.confirmation(b"s"), b"s")
    assert b.decrypt(a.encrypt(b"first record")) == b"first record"
    assert a.decrypt(b.encrypt(b"first reply")) == b"first reply"


def test_confirmation_direction_matters():
    # a's own send-key tag must not validate against a's recv key:
    # the tag proves the *peer's* derivation, not our own.
    a, _ = establish_pair()
    assert not a.matches_confirmation(a.confirmation(b"s"), b"s")


# ----------------------------------------------------------------------
# Counter-desync regressions (the transactional-batch contract)
# ----------------------------------------------------------------------
def test_failed_decrypt_does_not_advance_counter():
    a, b = establish_pair()
    good = a.encrypt(b"record-0")
    with pytest.raises(AuthenticationError):
        b.decrypt(good[:-1] + bytes([good[-1] ^ 1]))
    # The garbled record consumed nothing: the true record still opens.
    assert b.decrypt(good) == b"record-0"


def test_batch_prefix_failure_recovers_when_all_decrypted():
    # The serial-batch regression: a batch of N records must advance
    # the receiver by exactly N even if serving fails afterwards, so
    # both sides agree on counters for the *next* batch.  Model the
    # enclave's decrypt-all-upfront discipline directly.
    client, enclave = establish_pair()
    batch = [client.encrypt(f"query-{i}".encode()) for i in range(3)]
    opened = [enclave.decrypt(record) for record in batch]
    assert opened == [b"query-0", b"query-1", b"query-2"]
    # Engine fails, no replies encrypted (send counter unmoved): the
    # next exchange still lines up in both directions.
    retry = client.encrypt(b"query-retry")
    assert enclave.decrypt(retry) == b"query-retry"
    assert client.decrypt(enclave.encrypt(b"reply")) == b"reply"


@given(seed=st.integers(min_value=0, max_value=2**31),
       splits=st.lists(st.integers(min_value=1, max_value=5),
                       min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_counter_symmetry_property(seed, splits):
    # Any sequence of request/reply bursts keeps the two endpoints'
    # counters mirror-symmetric; a desync would surface as an
    # AuthenticationError on the first record after it.
    import random
    rng = random.Random(seed)
    a, b = establish_pair()
    for burst in splits:
        for _ in range(burst):
            payload = bytes([rng.randrange(256) for _ in range(8)])
            assert b.decrypt(a.encrypt(payload)) == payload
        assert a.decrypt(b.encrypt(b"ack")) == b"ack"
    assert a._send_counter == b._recv_counter
    assert a._recv_counter == b._send_counter


def test_truncated_record_rejected_and_harmless():
    a, b = establish_pair()
    record = a.encrypt(b"payload")
    for cut in (0, 1, len(record) // 2, len(record) - 1):
        with pytest.raises(AuthenticationError):
            b.decrypt(record[:cut])
    assert b.decrypt(record) == b"payload"
