"""Diffie-Hellman key agreement over the RFC 3526 group."""

import pytest

from repro.crypto.dh import DEFAULT_GROUP, DhKeyPair
from repro.errors import CryptoError


def test_shared_secret_agrees():
    alice = DhKeyPair()
    bob = DhKeyPair()
    assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)


def test_shared_secret_fixed_width():
    alice, bob = DhKeyPair(), DhKeyPair()
    secret = alice.shared_secret(bob.public)
    assert len(secret) == DEFAULT_GROUP.byte_length == 256


def test_distinct_keypairs_distinct_secrets():
    alice, bob, carol = DhKeyPair(), DhKeyPair(), DhKeyPair()
    assert alice.shared_secret(bob.public) != alice.shared_secret(carol.public)


def test_public_encoding_roundtrip():
    pair = DhKeyPair()
    encoded = pair.public_bytes()
    assert DEFAULT_GROUP.decode_element(encoded) == pair.public


@pytest.mark.parametrize("bad", [0, 1])
def test_degenerate_publics_rejected(bad):
    with pytest.raises(CryptoError):
        DEFAULT_GROUP.validate_public(bad)


def test_p_minus_one_rejected():
    with pytest.raises(CryptoError):
        DEFAULT_GROUP.validate_public(DEFAULT_GROUP.prime - 1)


def test_out_of_range_rejected():
    with pytest.raises(CryptoError):
        DEFAULT_GROUP.validate_public(DEFAULT_GROUP.prime + 5)


def test_shared_secret_validates_peer():
    pair = DhKeyPair()
    with pytest.raises(CryptoError):
        pair.shared_secret(1)


def test_keys_are_random():
    assert DhKeyPair().public != DhKeyPair().public
