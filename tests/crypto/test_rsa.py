"""RSA signatures (attestation substrate)."""

import random

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime, modular_inverse
from repro.crypto.rsa import RsaKeyPair
from repro.errors import AuthenticationError, CryptoError


@pytest.fixture(scope="module")
def keypair():
    return RsaKeyPair(1024)


def test_sign_verify_roundtrip(keypair):
    message = b"attestation report body"
    keypair.public.verify(message, keypair.sign(message))


def test_signature_is_deterministic(keypair):
    assert keypair.sign(b"m") == keypair.sign(b"m")


def test_tampered_message_rejected(keypair):
    signature = keypair.sign(b"original")
    with pytest.raises(AuthenticationError):
        keypair.public.verify(b"tampered", signature)


def test_tampered_signature_rejected(keypair):
    signature = bytearray(keypair.sign(b"m"))
    signature[5] ^= 0xFF
    with pytest.raises(AuthenticationError):
        keypair.public.verify(b"m", bytes(signature))


def test_wrong_key_rejected(keypair):
    other = RsaKeyPair(1024)
    with pytest.raises(AuthenticationError):
        other.public.verify(b"m", keypair.sign(b"m"))


def test_wrong_length_signature_rejected(keypair):
    with pytest.raises(AuthenticationError):
        keypair.public.verify(b"m", b"\x01" * 10)


def test_out_of_range_signature_rejected(keypair):
    too_big = (keypair.public.modulus + 1).to_bytes(
        keypair.public.byte_length, "big"
    )
    with pytest.raises(AuthenticationError):
        keypair.public.verify(b"m", too_big)


def test_fingerprint_stable_and_distinct(keypair):
    assert keypair.public.fingerprint() == keypair.public.fingerprint()
    assert keypair.public.fingerprint() != RsaKeyPair(1024).public.fingerprint()


def test_key_size_floor():
    with pytest.raises(CryptoError):
        RsaKeyPair(256)


def test_deterministic_keygen_with_injected_rng():
    a = RsaKeyPair(512, rng=random.Random(99))
    b = RsaKeyPair(512, rng=random.Random(99))
    assert a.public.modulus == b.public.modulus


def test_modulus_has_requested_bits(keypair):
    assert keypair.public.modulus.bit_length() == 1024


# ---------------------------------------------------------------------------
# Prime substrate
# ---------------------------------------------------------------------------

def test_small_primes_recognised():
    for p in (2, 3, 5, 7, 97, 251):
        assert is_probable_prime(p)


def test_small_composites_rejected():
    for c in (0, 1, 4, 100, 561, 8911):  # includes Carmichael numbers
        assert not is_probable_prime(c)


def test_generated_prime_has_exact_bits():
    p = generate_prime(64, rng=random.Random(5))
    assert p.bit_length() == 64
    assert is_probable_prime(p)


def test_generate_prime_floor():
    with pytest.raises(CryptoError):
        generate_prime(8)


def test_modular_inverse():
    assert (modular_inverse(3, 11) * 3) % 11 == 1
    with pytest.raises(CryptoError):
        modular_inverse(4, 8)
