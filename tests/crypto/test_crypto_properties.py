"""Property-based tests (hypothesis) over the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import aead_decrypt, aead_encrypt
from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.kdf import hkdf
from repro.crypto.poly1305 import constant_time_equal

keys = st.binary(min_size=32, max_size=32)
nonces = st.binary(min_size=12, max_size=12)
payloads = st.binary(min_size=0, max_size=512)


@given(key=keys, nonce=nonces, data=payloads, aad=payloads)
@settings(max_examples=60, deadline=None)
def test_aead_roundtrip(key, nonce, data, aad):
    assert aead_decrypt(key, nonce, aead_encrypt(key, nonce, data, aad), aad) == data


@given(key=keys, nonce=nonces, data=payloads,
       counter=st.integers(min_value=0, max_value=2**32 - 2))
@settings(max_examples=60, deadline=None)
def test_chacha20_is_an_involution(key, nonce, data, counter):
    once = chacha20_encrypt(key, counter, nonce, data)
    # Deliberate same-(counter, nonce) second call: decryption.
    assert chacha20_encrypt(key, counter, nonce, once) == data  # xlint: disable=dataflow


@given(key=keys, nonce=nonces, data=st.binary(min_size=1, max_size=256))
@settings(max_examples=40, deadline=None)
def test_ciphertext_never_equals_plaintext_with_tag(key, nonce, data):
    sealed = aead_encrypt(key, nonce, data)
    assert sealed != data
    assert len(sealed) == len(data) + 16


@given(ikm=st.binary(min_size=1, max_size=64),
       length=st.integers(min_value=1, max_value=255))
@settings(max_examples=40, deadline=None)
def test_hkdf_output_length(ikm, length):
    assert len(hkdf(ikm, length=length)) == length


@given(a=st.binary(max_size=64), b=st.binary(max_size=64))
@settings(max_examples=100, deadline=None)
def test_constant_time_equal_matches_builtin(a, b):
    assert constant_time_equal(a, b) == (a == b)
