"""HKDF against the RFC 5869 test vectors plus API invariants."""

import pytest

from repro.crypto.kdf import derive_subkeys, hkdf, hkdf_expand, hkdf_extract
from repro.errors import CryptoError


def test_rfc5869_case_1():
    ikm = b"\x0b" * 22
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk == bytes.fromhex(
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm == bytes.fromhex(
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_rfc5869_case_2_long_inputs():
    ikm = bytes(range(0x00, 0x50))
    salt = bytes(range(0x60, 0xB0))
    info = bytes(range(0xB0, 0x100))
    okm = hkdf(ikm, salt=salt, info=info, length=82)
    assert okm == bytes.fromhex(
        "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
        "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
        "cc30c58179ec3e87c14c01d5c1f3434f1d87"
    )


def test_rfc5869_case_3_empty_salt_and_info():
    ikm = b"\x0b" * 22
    okm = hkdf(ikm, length=42)
    assert okm == bytes.fromhex(
        "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_expand_length_bounds():
    prk = hkdf_extract(b"", b"ikm")
    with pytest.raises(CryptoError):
        hkdf_expand(prk, b"", 0)
    with pytest.raises(CryptoError):
        hkdf_expand(prk, b"", 255 * 32 + 1)
    assert len(hkdf_expand(prk, b"", 255 * 32)) == 255 * 32


def test_derive_subkeys_independent():
    keys = derive_subkeys(b"secret", ["a", "b", "c"], length=32)
    assert len(keys) == 3
    assert len({bytes(v) for v in keys.values()}) == 3
    assert all(len(v) == 32 for v in keys.values())


def test_derive_subkeys_deterministic():
    a = derive_subkeys(b"secret", ["x", "y"])
    b = derive_subkeys(b"secret", ["x", "y"])
    assert a == b


def test_derive_subkeys_rejects_duplicates():
    with pytest.raises(CryptoError):
        derive_subkeys(b"secret", ["dup", "dup"])


def test_salt_changes_output():
    assert hkdf(b"ikm", salt=b"one") != hkdf(b"ikm", salt=b"two")
