"""ChaCha20-Poly1305 AEAD: RFC vector, tamper resistance, misuse errors."""

import pytest

from repro.crypto.aead import TAG_SIZE, aead_decrypt, aead_encrypt
from repro.errors import AuthenticationError, CryptoError

KEY = bytes(range(0x80, 0xA0))
NONCE = bytes.fromhex("070000004041424344454647")
AAD = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)


def test_rfc_8439_vector():
    sealed = aead_encrypt(KEY, NONCE, PLAINTEXT, AAD)
    expected_ct = bytes.fromhex(
        "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
        "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
        "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
        "3ff4def08e4b7a9de576d26586cec64b6116"
    )
    expected_tag = bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")
    assert sealed == expected_ct + expected_tag


def test_roundtrip():
    sealed = aead_encrypt(KEY, NONCE, PLAINTEXT, AAD)
    assert aead_decrypt(KEY, NONCE, sealed, AAD) == PLAINTEXT


def test_roundtrip_without_aad():
    sealed = aead_encrypt(KEY, NONCE, b"secret query")
    assert aead_decrypt(KEY, NONCE, sealed) == b"secret query"


def test_empty_plaintext_roundtrip():
    sealed = aead_encrypt(KEY, NONCE, b"", AAD)
    assert len(sealed) == TAG_SIZE
    assert aead_decrypt(KEY, NONCE, sealed, AAD) == b""


@pytest.mark.parametrize("position", [0, 10, 50, -1])
def test_ciphertext_tampering_detected(position):
    sealed = bytearray(aead_encrypt(KEY, NONCE, PLAINTEXT, AAD))
    sealed[position] ^= 0x01
    with pytest.raises(AuthenticationError):
        aead_decrypt(KEY, NONCE, bytes(sealed), AAD)


def test_aad_mismatch_detected():
    sealed = aead_encrypt(KEY, NONCE, PLAINTEXT, AAD)
    with pytest.raises(AuthenticationError):
        aead_decrypt(KEY, NONCE, sealed, b"other aad")


def test_wrong_key_detected():
    sealed = aead_encrypt(KEY, NONCE, PLAINTEXT, AAD)
    with pytest.raises(AuthenticationError):
        aead_decrypt(bytes(32), NONCE, sealed, AAD)


def test_wrong_nonce_detected():
    sealed = aead_encrypt(KEY, NONCE, PLAINTEXT, AAD)
    with pytest.raises(AuthenticationError):
        aead_decrypt(KEY, bytes(12), sealed, AAD)


def test_truncated_ciphertext_rejected():
    with pytest.raises(AuthenticationError):
        aead_decrypt(KEY, NONCE, b"\x00" * (TAG_SIZE - 1), AAD)


def test_bad_nonce_length_rejected():
    with pytest.raises(CryptoError):
        aead_encrypt(KEY, b"\x00" * 8, PLAINTEXT)
