"""Secure channel: handshake, directional keys, replay/reorder protection."""

import pytest

from repro.crypto.channel import (
    ChannelEndpoint,
    HandshakeInitiator,
    HandshakeResponder,
    establish_pair,
)
from repro.errors import AuthenticationError, CryptoError, ProtocolError


def test_handshake_roundtrip():
    initiator_end, responder_end = establish_pair()
    record = initiator_end.encrypt(b"private query")
    assert responder_end.decrypt(record) == b"private query"
    reply = responder_end.encrypt(b"results")
    assert initiator_end.decrypt(reply) == b"results"


def test_manual_handshake_matches():
    initiator = HandshakeInitiator()
    responder = HandshakeResponder()
    responder_end = responder.finish(initiator.hello())
    initiator_end = initiator.finish(responder.public_bytes())
    assert responder_end.decrypt(initiator_end.encrypt(b"x")) == b"x"


def test_directional_keys_differ():
    a, b = establish_pair()
    assert a._send_key != a._recv_key
    assert a._send_key == b._recv_key
    assert a._recv_key == b._send_key


def test_replay_rejected():
    a, b = establish_pair()
    record = a.encrypt(b"once")
    b.decrypt(record)
    with pytest.raises(AuthenticationError):
        b.decrypt(record)


def test_reorder_rejected():
    a, b = establish_pair()
    first = a.encrypt(b"first")
    second = a.encrypt(b"second")
    with pytest.raises(AuthenticationError):
        b.decrypt(second)
    # A failed decrypt does not consume the expected counter, so delivery
    # in the correct order still succeeds afterwards.
    assert b.decrypt(first) == b"first"
    assert b.decrypt(second) == b"second"


def test_tampered_record_rejected():
    a, b = establish_pair()
    record = bytearray(a.encrypt(b"payload"))
    record[0] ^= 1
    with pytest.raises(AuthenticationError):
        b.decrypt(bytes(record))


def test_aad_binding():
    a, b = establish_pair()
    record = a.encrypt(b"payload", aad=b"header-1")
    with pytest.raises(AuthenticationError):
        b.decrypt(record, aad=b"header-2")


def test_many_messages_keep_counters_synced():
    a, b = establish_pair()
    for i in range(50):
        assert b.decrypt(a.encrypt(f"msg{i}".encode())) == f"msg{i}".encode()


def test_endpoint_key_length_enforced():
    with pytest.raises(CryptoError):
        ChannelEndpoint(send_key=b"short", recv_key=b"\x00" * 32)


def test_sessions_have_independent_keys():
    a1, _ = establish_pair()
    a2, _ = establish_pair()
    assert a1._send_key != a2._send_key


def test_raise_on_mismatch_helper():
    from repro.crypto.channel import raise_on_mismatch

    raise_on_mismatch(True, "fine")
    with pytest.raises(ProtocolError):
        raise_on_mismatch(False, "boom")
