"""Unit tests for the trace oracle (repro.obs.checker).

Each invariant is exercised both ways: a trace built to satisfy it and a
trace built to break it.  Traces are produced through a real
TraceRecorder so the shapes match what the instrumented stack emits.
"""

import pytest

from repro.obs.checker import (
    OUTCOME_DEGRADED,
    OUTCOME_ERROR,
    OUTCOME_REPLY,
    TraceChecker,
    outcome_of,
)
from repro.obs.tracing import (
    PLACEMENT_CLIENT,
    PLACEMENT_ENCLAVE,
    PLACEMENT_HOST,
    TraceRecorder,
)


def good_search_trace(recorder, query="secret medical query"):
    """A well-formed broker.search trace, the shape the stack emits."""
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT,
                       **{"retry.max_attempts": 2}) as root:
        with recorder.span("ecall.request", placement=PLACEMENT_HOST,
                           payload_bytes=321):
            with recorder.span("enclave.obfuscation",
                               placement=PLACEMENT_ENCLAVE, query=query):
                pass
            with recorder.span("enclave.engine",
                               placement=PLACEMENT_ENCLAVE,
                               **{"retry.max_attempts": 3}):
                with recorder.span("ocall.send", placement=PLACEMENT_HOST,
                                   payload_bytes=77):
                    pass
        root.set(outcome=OUTCOME_REPLY, degraded=False)


def test_well_formed_trace_passes_every_invariant():
    recorder = TraceRecorder()
    good_search_trace(recorder)
    assert TraceChecker().check_recorder(recorder) == []
    TraceChecker().assert_ok(recorder.traces)


def test_unbalanced_boundary_span_is_flagged():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT) as root:
        scope = recorder.span("ecall.request", placement=PLACEMENT_HOST)
        scope.__enter__()  # never exited: the transition did not return
        root.set(outcome=OUTCOME_REPLY, degraded=False)
    # Closing the root unwound the abandoned ecall with an error status,
    # so fabricate the truly-unbalanced case on the finished tree:
    (trace,) = recorder.traces
    trace.root.children[0].end = None
    violations = TraceChecker().check([trace])
    assert any(v.invariant == "balanced-boundary" for v in violations)


def test_plaintext_query_in_host_span_is_flagged():
    recorder = TraceRecorder()
    query = "embarrassing disease"
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT) as root:
        with recorder.span("enclave.obfuscation",
                           placement=PLACEMENT_ENCLAVE, query=query):
            pass
        # The bug the oracle exists to catch: a host span recording the
        # payload instead of its size.
        with recorder.span("ocall.send", placement=PLACEMENT_HOST,
                           payload=f"GET /search?q={query}"):
            pass
        root.set(outcome=OUTCOME_REPLY, degraded=False)
    violations = TraceChecker().check_recorder(recorder)
    assert any(v.invariant == "host-plaintext" for v in violations)


def test_plaintext_corpus_can_be_seeded_explicitly():
    recorder = TraceRecorder()
    with recorder.span("host.op", placement=PLACEMENT_HOST,
                       note="contains the-secret right here"):
        pass
    assert TraceChecker().check_recorder(recorder) == []  # no corpus
    violations = TraceChecker(queries=("the-secret",)).check_recorder(recorder)
    assert any(v.invariant == "host-plaintext" for v in violations)


def test_host_plaintext_in_event_attributes_is_flagged():
    recorder = TraceRecorder()
    with recorder.span("ocall.send", placement=PLACEMENT_HOST):
        recorder.event("engine.request", url="/search?q=leaky query")
    violations = TraceChecker(queries=("leaky query",)).check_recorder(recorder)
    assert any(v.invariant == "host-plaintext" for v in violations)


def test_retries_beyond_policy_budget_are_flagged():
    recorder = TraceRecorder()
    with recorder.span("enclave.engine", placement=PLACEMENT_ENCLAVE,
                       **{"retry.max_attempts": 3}):
        for attempt in range(3):  # 3 retries = 4 attempts > budget of 3
            recorder.event("retry", attempt=attempt + 1)
    violations = TraceChecker().check_recorder(recorder)
    assert any(v.invariant == "bounded-retries" for v in violations)


def test_retries_within_policy_budget_pass():
    recorder = TraceRecorder()
    with recorder.span("enclave.engine", placement=PLACEMENT_ENCLAVE,
                       **{"retry.max_attempts": 3}):
        recorder.event("retry", attempt=1)
        recorder.event("retry", attempt=2)
    assert TraceChecker().check_recorder(recorder) == []


def test_unflagged_degraded_reply_is_caught():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT) as root:
        recorder.event("degraded.hit")
        root.set(outcome=OUTCOME_REPLY, degraded=False)  # the lie
    violations = TraceChecker().check_recorder(recorder)
    invariants = {v.invariant for v in violations}
    assert "degraded-flagged" in invariants
    assert "single-outcome" not in invariants or True  # outcome is consistent


def test_flagged_degraded_reply_passes():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT) as root:
        recorder.event("degraded.hit")
        root.set(outcome=OUTCOME_DEGRADED, degraded=True)
    assert TraceChecker().check_recorder(recorder) == []


def test_degraded_hit_on_errored_request_owes_no_flag():
    recorder = TraceRecorder()
    with pytest.raises(RuntimeError):
        with recorder.span("broker.search", placement=PLACEMENT_CLIENT):
            recorder.event("degraded.hit")
            raise RuntimeError("enclave died after the degraded lookup")
    assert TraceChecker().check_recorder(recorder) == []


def test_request_without_outcome_is_flagged():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT):
        pass  # finished ok but never claimed an outcome
    violations = TraceChecker().check_recorder(recorder)
    assert any(v.invariant == "single-outcome" for v in violations)


def test_outcome_degraded_mismatch_is_flagged():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT) as root:
        root.set(outcome=OUTCOME_DEGRADED, degraded=False)
    violations = TraceChecker().check_recorder(recorder)
    assert any(v.invariant == "single-outcome" for v in violations)


def test_errored_request_claiming_a_reply_is_flagged():
    recorder = TraceRecorder()
    with pytest.raises(RuntimeError):
        with recorder.span("broker.search",
                           placement=PLACEMENT_CLIENT) as root:
            root.set(outcome=OUTCOME_REPLY)
            raise RuntimeError("but it failed")
    violations = TraceChecker().check_recorder(recorder)
    assert any(v.invariant == "single-outcome" for v in violations)


def test_non_request_roots_are_exempt_from_outcomes():
    recorder = TraceRecorder()
    with recorder.span("ecall.init", placement=PLACEMENT_HOST):
        pass
    assert TraceChecker().check_recorder(recorder) == []
    with pytest.raises(ValueError):
        outcome_of(recorder.traces[0])


def test_outcome_of_reads_the_root():
    recorder = TraceRecorder()
    good_search_trace(recorder)
    assert outcome_of(recorder.traces[0]) == OUTCOME_REPLY
    with pytest.raises(RuntimeError):
        with recorder.span("broker.search", placement=PLACEMENT_CLIENT):
            raise RuntimeError("dead")
    assert outcome_of(recorder.traces[1]) == OUTCOME_ERROR


def test_skip_silences_a_named_invariant():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT):
        pass
    checker = TraceChecker(skip=frozenset({"single-outcome"}))
    assert checker.check_recorder(recorder) == []


def test_assert_ok_raises_with_a_readable_report():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT):
        pass
    with pytest.raises(AssertionError, match="single-outcome"):
        TraceChecker().assert_ok(recorder.traces)
