"""TraceRecorder under concurrent spans: per-thread sequence numbers.

Interleaved request trees from the scheduler's worker threads must not
leak cross-thread scheduling into timestamps: each thread numbers its
own spans 1, 2, 3, …, so the recorded trees — and therefore the
TraceChecker's ordering oracles and the golden-trace digests — are
identical no matter how the OS interleaves the threads.
"""

from __future__ import annotations

import threading

from repro.obs import TraceChecker, TraceRecorder

THREADS = 6
TREES_PER_THREAD = 5


def _record_tree(recorder, label):
    with recorder.span("broker.search", placement="client", step=label,
                       outcome="reply"):
        with recorder.span("ecall.request", placement="host"):
            with recorder.span("enclave.obfuscation",
                               placement="enclave"):
                recorder.event("fake.query", k=3)
    # timestamps restart per tree only per thread's own counter


def test_interleaved_trees_get_deterministic_timestamps():
    recorder = TraceRecorder()
    barrier = threading.Barrier(THREADS)

    def worker(index):
        barrier.wait()
        for tree in range(TREES_PER_THREAD):
            _record_tree(recorder, tree)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    traces = recorder.traces
    assert len(traces) == THREADS * TREES_PER_THREAD

    # Group the traces back into per-thread sequences: every thread
    # produced the same five trees, so the multiset of (start, end)
    # shapes is exactly THREADS copies of one deterministic sequence.
    shapes = {}
    for trace in traces:
        root = trace.root
        shape = (root.start, root.end,
                 tuple((child.start, child.end)
                       for child in root.children))
        shapes[shape] = shapes.get(shape, 0) + 1
    assert len(shapes) == TREES_PER_THREAD
    assert all(count == THREADS for count in shapes.values())

    # The first tree on every thread starts at sequence 1 — timestamps
    # depend only on the thread's own history, never on interleaving.
    first_tree_roots = [trace.root for trace in traces
                        if trace.root.start == 1.0]
    assert len(first_tree_roots) == THREADS


def test_checker_oracles_hold_for_interleaved_trees():
    recorder = TraceRecorder()
    barrier = threading.Barrier(THREADS)

    def worker(index):
        barrier.wait()
        for tree in range(TREES_PER_THREAD):
            _record_tree(recorder, tree)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    violations = TraceChecker().check_recorder(recorder)
    assert not violations
