"""Digest building and JSON export (repro.obs.export)."""

import json

from repro import obs
from repro.obs.checker import TraceChecker
from repro.obs.export import (
    DIGEST_KEY,
    ProfileSession,
    attach_digest,
    build_digest,
    metrics_digest,
    trace_digest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import PLACEMENT_CLIENT, PLACEMENT_HOST, TraceRecorder


def recorded_workload():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT) as root:
        with recorder.span("ecall.request", placement=PLACEMENT_HOST):
            recorder.event("engine.request", request_bytes=10)
        root.set(outcome="reply", degraded=False)
    return recorder


def test_trace_digest_counts_spans_events_outcomes():
    digest = trace_digest(recorded_workload())
    assert digest["trace_count"] == 1
    assert digest["span_counts"] == {"broker.search": 1, "ecall.request": 1}
    assert digest["event_counts"] == {"engine.request": 1}
    assert digest["placements"] == {"client": 1, "host": 1}
    assert digest["outcomes"] == {"reply": 1}
    assert digest["invariants_ok"] is True
    assert digest["violations"] == []


def test_trace_digest_reports_violations():
    recorder = TraceRecorder()
    with recorder.span("broker.search", placement=PLACEMENT_CLIENT):
        pass  # no outcome claimed
    digest = trace_digest(recorder)
    assert digest["invariants_ok"] is False
    assert any("single-outcome" in v for v in digest["violations"])


def test_digests_tolerate_missing_planes():
    assert trace_digest(None) == {}
    assert metrics_digest(None) == {}
    combined = build_digest()
    assert combined == {"traces": {}, "metrics": {}}


def test_attach_digest_folds_into_existing_report(tmp_path):
    path = tmp_path / "BENCH_test.json"
    path.write_text(json.dumps({"benchmarks": [1, 2, 3]}))
    attach_digest(str(path), {"trace_count": 5})
    document = json.loads(path.read_text())
    assert document["benchmarks"] == [1, 2, 3]  # pre-existing data kept
    assert document[DIGEST_KEY] == {"trace_count": 5}


def test_attach_digest_creates_missing_report(tmp_path):
    path = tmp_path / "fresh.json"
    attach_digest(str(path), {"x": 1})
    assert json.loads(path.read_text()) == {DIGEST_KEY: {"x": 1}}


def test_attach_digest_recovers_from_corrupt_report(tmp_path):
    path = tmp_path / "corrupt.json"
    path.write_text("{not json")
    document = attach_digest(str(path), {"x": 1})
    assert document[DIGEST_KEY] == {"x": 1}


def test_profile_session_installs_and_restores_defaults(tmp_path):
    assert obs.installed() == (None, None)
    with ProfileSession("unit") as session:
        assert obs.installed() == (session.recorder, session.registry)
        with session.recorder.span("broker.search",
                                   placement=PLACEMENT_CLIENT) as root:
            root.set(outcome="reply", degraded=False)
        session.registry.counter("ops").inc()
    assert obs.installed() == (None, None)  # restored on exit
    assert session.digest["traces"]["trace_count"] == 1
    assert session.digest["metrics"]["counters"] == {"ops": 1}

    path = tmp_path / "BENCH_unit.json"
    session.attach(str(path))
    document = json.loads(path.read_text())
    assert document[DIGEST_KEY]["traces"]["trace_count"] == 1


def test_profile_session_uses_supplied_checker():
    checker = TraceChecker(skip=frozenset({"single-outcome"}))
    with ProfileSession("unit", checker=checker) as session:
        with session.recorder.span("broker.search",
                                   placement=PLACEMENT_CLIENT):
            pass  # would violate single-outcome, but the checker skips it
    assert session.digest["traces"]["invariants_ok"] is True


def test_nested_profile_sessions_restore_the_outer_one():
    with ProfileSession("outer") as outer:
        with ProfileSession("inner"):
            pass
        assert obs.installed() == (outer.recorder, outer.registry)
    assert obs.installed() == (None, None)
