"""The zero-overhead contract, as a tier-1 test.

Instrumentation must never perturb the boundary-crossing accounting the
benchmarks assert on: a deployment run uninstrumented, with the no-op
recorder, and with a live :class:`~repro.obs.TraceRecorder` must produce
bit-for-bit identical ``Enclave.boundary_snapshot()`` deltas.
(``tools/check_api.py`` enforces the same thing outside pytest.)
"""

import pytest

from repro.core.deployment import XSearchDeployment
from repro.obs import NullRecorder, TraceRecorder

UNINSTRUMENTED = object()


def boundary_fingerprint(recorder):
    kwargs = {} if recorder is UNINSTRUMENTED else {"recorder": recorder}
    with XSearchDeployment.create(seed=11, k=2, **kwargs) as dep:
        dep.client.search("warmup query", limit=3)  # one-time connect
        before = dep.proxy.enclave.boundary_snapshot()
        for i in range(6):
            dep.client.search(f"probe query {i}", limit=3)
        dep.client.search_batch(["batch one", "batch two"], limit=3)
        delta = dep.proxy.enclave.boundary_snapshot() - before
    return {
        "ecalls": delta.ecalls,
        "ocalls": delta.ocalls,
        "ecall_counts": dict(delta.ecall_counts),
        "ocall_counts": dict(delta.ocall_counts),
        "cycles": delta.cycles,
    }


@pytest.mark.parametrize("make_recorder", [NullRecorder, TraceRecorder],
                         ids=["null-recorder", "trace-recorder"])
def test_instrumentation_leaves_boundary_deltas_untouched(make_recorder):
    assert boundary_fingerprint(make_recorder()) == boundary_fingerprint(
        UNINSTRUMENTED
    )


def test_uninstrumented_deployment_records_nothing():
    recorder = NullRecorder()
    with XSearchDeployment.create(seed=11, k=2, recorder=recorder) as dep:
        dep.client.search("probe query", limit=3)
    assert recorder.traces == ()
    assert recorder.enabled is False
