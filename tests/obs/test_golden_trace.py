"""Golden-trace regression: the span tree of the pipeline is contract.

Two scenarios run against a checked-in golden file:

* ``e2e`` — one end-to-end private search through a freshly attested
  deployment;
* ``faulted`` — a search that hits an enclave kill: the host supervisor
  respawns and restores the sealed checkpoint, the broker heals
  (re-attests + re-handshakes) and the retry serves the reply.

Both run under the virtual clock and a seeded fault plan, and the
recorder's structural normal form (:meth:`repro.obs.tracing.Span.normalized`)
drops everything non-deterministic — so a mismatch means the *protocol
path changed*, not that timing wobbled.

Regenerate after an intentional pipeline change with::

    REGEN_GOLDEN_TRACES=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_trace.py
"""

import json
import os

import pytest

from repro.core.deployment import XSearchDeployment
from repro.faults import FaultPlan, KIND_CRASH, SITE_ECALL
from repro.net.clock import VirtualClock
from repro.obs import TraceChecker, TraceRecorder
from repro.sgx.sealing import SealingPlatform

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_traces.json")
_REGEN = os.environ.get("REGEN_GOLDEN_TRACES") == "1"


def normalized_traces(recorder):
    return [trace.normalized() for trace in recorder.traces]


def run_e2e_scenario():
    clock = VirtualClock()
    recorder = TraceRecorder(clock=clock)
    with XSearchDeployment.create(seed=11, k=2, recorder=recorder) as dep:
        results = dep.client.search("hotel rome", limit=5)
        assert results
    TraceChecker(queries=("hotel rome",)).assert_ok(
        recorder.traces
    )
    return normalized_traces(recorder)


def run_faulted_scenario():
    clock = VirtualClock()
    recorder = TraceRecorder(clock=clock)
    plan = FaultPlan(seed=0)
    with XSearchDeployment.create(
        seed=11, k=2, recorder=recorder, fault_plan=plan,
        sealing_platform=SealingPlatform(), checkpoint_interval=1,
    ) as dep:
        dep.client.search("hotel rome", limit=5)  # checkpointed after
        plan.trigger(SITE_ECALL, KIND_CRASH)
        results = dep.client.search("diabetes treatment", limit=5)
        assert results
        assert dep.proxy.respawn_count == 1
        assert dep.broker.reconnects == 1
    TraceChecker(queries=("hotel rome", "diabetes treatment")).assert_ok(
        recorder.traces
    )
    return normalized_traces(recorder)


SCENARIOS = {
    "e2e": run_e2e_scenario,
    "faulted": run_faulted_scenario,
}


def load_golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            f"golden file {GOLDEN_PATH} is missing; regenerate it with "
            "REGEN_GOLDEN_TRACES=1"
        )
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.skipif(not _REGEN, reason="set REGEN_GOLDEN_TRACES=1 to regen")
def test_regenerate_golden_traces():
    document = {name: scenario() for name, scenario in SCENARIOS.items()}
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


@pytest.mark.skipif(_REGEN, reason="regenerating, not comparing")
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_tree_matches_golden(name):
    golden = load_golden()
    actual = SCENARIOS[name]()
    assert actual == golden[name], (
        f"the {name!r} span tree diverged from the golden file — if the "
        f"pipeline change is intentional, regenerate with "
        f"REGEN_GOLDEN_TRACES=1"
    )


def test_faulted_scenario_records_the_recovery_story():
    """Independent of the golden bytes: the recovery events must appear,
    in causal order, on the healed request's root span."""
    clock = VirtualClock()
    recorder = TraceRecorder(clock=clock)
    plan = FaultPlan(seed=0)
    with XSearchDeployment.create(
        seed=11, k=2, recorder=recorder, fault_plan=plan,
        sealing_platform=SealingPlatform(), checkpoint_interval=1,
    ) as dep:
        dep.client.search("hotel rome", limit=5)
        plan.trigger(SITE_ECALL, KIND_CRASH)
        dep.client.search("diabetes treatment", limit=5)
    healed = [t for t in recorder.traces if t.root.name == "broker.search"][-1]
    event_names = [e.name for e in healed.root.events]
    for expected in ("enclave.respawn", "checkpoint.restore", "retry",
                     "broker.heal", "broker.attested"):
        assert expected in event_names, (expected, event_names)
    assert (event_names.index("enclave.respawn")
            < event_names.index("retry")
            < event_names.index("broker.attested"))
    # The first ecall attempt died: its span is errored but balanced.
    failed = [s for s in healed.walk()
              if s.name == "ecall.request" and s.status == "error"]
    assert failed and all(s.finished for s in failed)
    assert failed[0].error == "EnclaveLostError"
    assert healed.root.attributes["outcome"] == "reply"
