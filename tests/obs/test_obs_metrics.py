"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.errors import ExperimentError
from repro.net.clock import VirtualClock
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    timer,
)


def test_counter_counts_up_only():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_function():
    gauge = Gauge("g")
    assert gauge.value == 0
    gauge.set(7)
    assert gauge.value == 7
    backing = {"value": 1}
    gauge.set_function(lambda: backing["value"])
    backing["value"] = 42
    assert gauge.value == 42  # computed on read, never stale
    gauge.set(3)  # an explicit set unbinds the function
    assert gauge.value == 3
    with pytest.raises(ValueError):
        gauge.set_function("not callable")


def test_histogram_summary_percentiles():
    histogram = Histogram("h", exact=True)
    assert histogram.summary() == {"count": 0}
    for v in range(1, 101):
        histogram.record(float(v))
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert 49 <= summary["p50"] <= 52
    assert 94 <= summary["p95"] <= 96
    assert histogram.percentile(99.0) >= 98


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert registry.get("a") is registry.counter("a")
    assert registry.get("missing") is None
    assert registry.names() == ["a", "b", "c"]


def test_registry_rejects_kind_conflicts_and_empty_names():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ExperimentError):
        registry.gauge("x")
    with pytest.raises(ExperimentError):
        registry.counter("")


def test_as_dict_digests_every_instrument():
    registry = MetricsRegistry()
    registry.counter("hits").inc(3)
    registry.gauge("depth").set(9)
    registry.histogram("lat").record(1.0)
    digest = registry.as_dict()
    assert digest["counters"] == {"hits": 3}
    assert digest["gauges"] == {"depth": 9}
    assert digest["histograms"]["lat"]["count"] == 1


def test_timer_records_elapsed_clock_time():
    registry = MetricsRegistry()
    clock = VirtualClock(start=10.0)
    with registry.timer("op", clock):
        clock.advance(0.25)
    summary = registry.histogram("op").summary()
    assert summary["count"] == 1
    assert summary["max"] == pytest.approx(0.25, rel=0.01)


def test_module_timer_tolerates_no_registry():
    with timer(None, "noop", None):
        pass  # no registry, no clock resolution, no exception
