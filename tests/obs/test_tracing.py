"""Unit tests for the span-tree recorder (repro.obs.tracing)."""

import threading

import pytest

from repro.net.clock import VirtualClock
from repro.obs.tracing import (
    PLACEMENT_CLIENT,
    PLACEMENT_ENCLAVE,
    PLACEMENT_HOST,
    STATUS_ERROR,
    STATUS_OK,
    NullRecorder,
    TraceRecorder,
    _NULL_SPAN,
    event,
    span,
)


def test_single_span_becomes_a_trace():
    recorder = TraceRecorder()
    with recorder.span("root", placement=PLACEMENT_CLIENT) as root:
        root.set(marker=1)
    traces = recorder.traces
    assert len(traces) == 1
    assert traces[0].root.name == "root"
    assert traces[0].root.placement == PLACEMENT_CLIENT
    assert traces[0].root.status == STATUS_OK
    assert traces[0].root.attributes == {"marker": 1}
    assert traces[0].root.finished


def test_nested_spans_build_a_tree():
    recorder = TraceRecorder()
    with recorder.span("root"):
        with recorder.span("child.a", placement=PLACEMENT_ENCLAVE):
            with recorder.span("grandchild"):
                pass
        with recorder.span("child.b"):
            pass
    (trace,) = recorder.traces
    names = [s.name for s in trace.walk()]
    assert names == ["root", "child.a", "grandchild", "child.b"]
    assert trace.root.children[0].placement == PLACEMENT_ENCLAVE
    assert trace.root.children[0].parent_id == trace.root.span_id


def test_exception_marks_span_errored_and_propagates():
    recorder = TraceRecorder()
    with pytest.raises(ValueError):
        with recorder.span("root"):
            raise ValueError("boom")
    (trace,) = recorder.traces
    assert trace.root.status == STATUS_ERROR
    assert trace.root.error == "ValueError"


def test_events_attach_to_the_innermost_open_span():
    recorder = TraceRecorder()
    with recorder.span("root"):
        recorder.event("on.root")
        with recorder.span("child"):
            recorder.event("on.child", n=3)
    (trace,) = recorder.traces
    assert [e.name for e in trace.root.events] == ["on.root"]
    child = trace.root.children[0]
    assert [e.name for e in child.events] == ["on.child"]
    assert child.events[0].attributes == {"n": 3}
    assert trace.events("on.child")


def test_orphan_events_are_kept_not_lost():
    recorder = TraceRecorder()
    recorder.event("no.span.open")
    assert [e.name for e in recorder.orphan_events] == ["no.span.open"]
    assert recorder.traces == ()


def test_default_timestamps_are_a_deterministic_sequence():
    recorder = TraceRecorder()
    with recorder.span("a"):
        pass
    with recorder.span("b"):
        pass
    a, b = (t.root for t in recorder.traces)
    assert (a.start, a.end, b.start, b.end) == (1.0, 2.0, 3.0, 4.0)


def test_injected_clock_supplies_timestamps():
    clock = VirtualClock(start=100.0)
    recorder = TraceRecorder(clock=clock)
    with recorder.span("timed"):
        clock.advance(2.5)
    (trace,) = recorder.traces
    assert trace.root.start == 100.0
    assert trace.root.end == 102.5
    assert trace.root.duration == 2.5


def test_threads_keep_separate_span_stacks():
    recorder = TraceRecorder()
    barrier = threading.Barrier(2)

    def worker(name):
        with recorder.span(name):
            barrier.wait()
            with recorder.span(f"{name}.inner"):
                pass

    threads = [threading.Thread(target=worker, args=(f"t{i}",))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    traces = recorder.traces
    assert len(traces) == 2
    for trace in traces:
        assert len(trace.root.children) == 1
        assert trace.root.children[0].name == f"{trace.root.name}.inner"


def test_mis_nested_close_unwinds_abandoned_spans():
    recorder = TraceRecorder()
    outer_scope = recorder.span("outer")
    outer = outer_scope.__enter__()
    inner_scope = recorder.span("inner")
    inner_scope.__enter__()
    # The inner __exit__ is skipped (simulating a broken unwind path);
    # closing the outer span must still finish the abandoned inner one.
    outer_scope.__exit__(None, None, None)
    (trace,) = recorder.traces
    assert trace.root is outer
    assert trace.root.children[0].finished
    assert recorder.current_span() is None


def test_max_traces_drops_and_counts():
    recorder = TraceRecorder(max_traces=2)
    for i in range(5):
        with recorder.span(f"s{i}"):
            pass
    assert len(recorder.traces) == 2
    assert recorder.dropped_traces == 3
    recorder.reset()
    assert recorder.traces == ()
    assert recorder.dropped_traces == 0


def test_normalized_form_is_structure_only():
    recorder = TraceRecorder()
    with recorder.span("root", payload_bytes=123, label="stable",
                       elapsed_seconds=0.5, weird=object()) as root:
        root.set(count=7)
        recorder.event("evt")
    (trace,) = recorder.traces
    normal = trace.normalized()
    assert normal["name"] == "root"
    assert normal["attributes"]["payload_bytes"] == "<volatile>"
    assert normal["attributes"]["elapsed_seconds"] == "<volatile>"
    assert normal["attributes"]["label"] == "stable"
    assert normal["attributes"]["count"] == 7
    assert normal["attributes"]["weird"] == "<object>"
    assert normal["events"] == ["evt"]
    assert "start" not in normal and "span_id" not in normal


def test_to_dict_round_trips_the_full_tree():
    recorder = TraceRecorder()
    with recorder.span("root"):
        with recorder.span("child"):
            pass
    (trace,) = recorder.traces
    data = trace.to_dict()
    assert data["root"]["name"] == "root"
    assert data["root"]["children"][0]["name"] == "child"


def test_module_helpers_tolerate_no_recorder():
    with span(None, "anything", placement=PLACEMENT_HOST) as s:
        s.set(ignored=True)
    event(None, "ignored")
    assert span(None, "x") is _NULL_SPAN  # shared inert object, no alloc


def test_null_recorder_is_inert():
    recorder = NullRecorder()
    assert recorder.enabled is False
    with recorder.span("x") as s:
        s.set(a=1)
    recorder.event("y")
    assert recorder.traces == ()
    recorder.reset()


def test_trace_find_filters_by_name():
    recorder = TraceRecorder()
    with recorder.span("root"):
        with recorder.span("leaf"):
            pass
        with recorder.span("leaf"):
            pass
    (trace,) = recorder.traces
    assert len(trace.find("leaf")) == 2
    assert len(trace.find("missing")) == 0


def test_max_traces_must_be_positive():
    with pytest.raises(ValueError):
        TraceRecorder(max_traces=0)
