"""Seeded randomized stress: every request ends in exactly one outcome.

~200 operations (single searches and batches) run against a deployment
under a randomized-but-seeded :class:`~repro.faults.FaultPlan` injecting
engine failures, enclave crashes, EPC pressure and attestation
transients.  The :class:`~repro.obs.TraceChecker` then audits the full
trace record:

* every request trace ends in exactly one of *reply*, *degraded reply*
  or a typed error (``RetryExhaustedError`` / ``EngineUnavailableError``
  when every layer of tolerance is spent);
* no host-placed span ever carries a plaintext query;
* every ecall/ocall span is balanced and every retry respects its
  policy budget.
"""

import random

import pytest

from repro.core.deployment import XSearchDeployment
from repro.errors import (
    EngineUnavailableError,
    ReproError,
    RetryExhaustedError,
)
from repro.faults import (
    ENGINE_SITES,
    FaultPlan,
    KIND_CRASH,
    KIND_DROP,
    KIND_PRESSURE,
    KIND_REFUSE,
    KIND_TIMEOUT,
    KIND_TRANSIENT,
    SITE_ATTESTATION,
    SITE_ECALL,
    SITE_EPC,
)
from repro.net.clock import VirtualClock
from repro.obs import (
    OUTCOME_DEGRADED,
    OUTCOME_ERROR,
    OUTCOME_REPLY,
    MetricsRegistry,
    TraceChecker,
    TraceRecorder,
    outcome_of,
)
from repro.obs.checker import REQUEST_ROOT_NAMES
from repro.sgx.sealing import SealingPlatform

TOTAL_OPS = 200
QUERIES = ("hotel rome", "diabetes treatment", "cheap flights",
           "severe headache", "tax attorney", "vacation greece")


def stress_plan(seed: int) -> FaultPlan:
    plan = FaultPlan(seed=seed)
    for site in ENGINE_SITES:
        plan.on(site, KIND_DROP, probability=0.02)
        plan.on(site, KIND_TIMEOUT, probability=0.01)
    plan.on(ENGINE_SITES[0], KIND_REFUSE, probability=0.01)
    plan.on(SITE_ECALL, KIND_CRASH, probability=0.01)
    plan.on(SITE_EPC, KIND_PRESSURE, probability=0.02)
    plan.on(SITE_ATTESTATION, KIND_TRANSIENT, probability=0.05)
    return plan


@pytest.mark.parametrize("seed", [1, 20_17])
def test_stress_every_request_has_exactly_one_outcome(seed):
    rng = random.Random(seed)
    clock = VirtualClock()
    recorder = TraceRecorder(clock=clock)
    registry = MetricsRegistry()
    plan = stress_plan(seed)
    outcomes = {OUTCOME_REPLY: 0, OUTCOME_DEGRADED: 0, OUTCOME_ERROR: 0}
    issued = 0
    with XSearchDeployment.create(
        seed=seed, k=2, recorder=recorder, registry=registry,
        fault_plan=plan, sealing_platform=SealingPlatform(),
        checkpoint_interval=8,
    ) as dep:
        while issued < TOTAL_OPS:
            use_batch = rng.random() < 0.3
            try:
                if use_batch:
                    batch = [rng.choice(QUERIES)
                             for _ in range(rng.randint(2, 4))]
                    replies = dep.client.search_batch(batch, limit=4)
                    assert len(replies) == len(batch)
                else:
                    dep.client.search(rng.choice(QUERIES), limit=4)
                outcome = (OUTCOME_DEGRADED if dep.broker.last_degraded
                           else OUTCOME_REPLY)
            except (RetryExhaustedError, EngineUnavailableError):
                # Every layer of tolerance spent: the typed failure IS
                # the third legal outcome.
                outcome = OUTCOME_ERROR
            except ReproError as exc:  # pragma: no cover - diagnostics
                pytest.fail(f"op {issued} leaked an untyped failure: "
                            f"{type(exc).__name__}: {exc}")
            outcomes[outcome] += 1
            issued += 1

    assert issued == TOTAL_OPS
    assert sum(outcomes.values()) == TOTAL_OPS
    # The plan must have actually bitten — a stress run where nothing
    # failed over proves nothing about the invariants under stress.
    assert plan.trace, "the fault plan never fired"
    assert outcomes[OUTCOME_REPLY] > 0

    traces = recorder.traces
    request_traces = [t for t in traces
                      if t.root.name in REQUEST_ROOT_NAMES]
    assert len(request_traces) == TOTAL_OPS

    # The oracle: balanced boundaries, no host plaintext, bounded
    # retries, flagged degradation, single outcomes — over every trace.
    TraceChecker(queries=QUERIES).assert_ok(traces)

    # The trace record agrees with what the client observed.
    traced = {OUTCOME_REPLY: 0, OUTCOME_DEGRADED: 0, OUTCOME_ERROR: 0}
    for trace in request_traces:
        traced[outcome_of(trace)] += 1
    assert traced == outcomes

    # Every errored root names a typed error — nothing vanished.
    for trace in request_traces:
        if outcome_of(trace) == OUTCOME_ERROR:
            assert trace.root.error in (
                "RetryExhaustedError", "EngineUnavailableError",
            ), trace.root.error

    # And the metrics plane kept coherent books.
    counters = registry.as_dict()["counters"]
    assert counters["proxy.requests"] >= TOTAL_OPS
    assert counters["sgx.boundary.ecalls"] == sum(
        v for k, v in counters.items() if k.startswith("sgx.ecall.")
    )
    assert counters["sgx.boundary.ocalls"] == sum(
        v for k, v in counters.items() if k.startswith("sgx.ocall.")
    )


def test_stress_is_deterministic_for_a_given_seed():
    """Same seed → identical normalized trace record (the property the
    golden test and any future bisection rely on)."""

    def run():
        rng = random.Random(7)
        recorder = TraceRecorder(clock=VirtualClock())
        plan = stress_plan(7)
        with XSearchDeployment.create(
            seed=7, k=2, recorder=recorder, fault_plan=plan,
            sealing_platform=SealingPlatform(), checkpoint_interval=8,
        ) as dep:
            for _ in range(40):
                try:
                    dep.client.search(rng.choice(QUERIES), limit=3)
                except (RetryExhaustedError, EngineUnavailableError):
                    pass
        return [t.normalized() for t in recorder.traces]

    assert run() == run()
