"""Concurrency hammer for the in-enclave result cache.

The cache's ``put`` deliberately carries a cooperative step point
*inside* its critical section, so the sim can park a task mid-insert
and run every other task against the held lock.  Two layers:

* a unit hammer driving :class:`ResultCache` directly through many
  seeded interleavings — the byte budget must never be exceeded, reads
  must never be torn (a key only ever maps to a value written under
  that key), and the accounting must audit clean;
* whole-deployment sweeps whose chaos schedule fires EPC-pressure
  spikes (the ``pressure`` action triggers the fault plan's
  ``enclave.epc`` site) while clients keep the cache hot — every
  invariant oracle, including the in-enclave accounting audit, must
  stay green.
"""

from __future__ import annotations

import pytest

from repro.core.result_cache import ResultCache
from repro.sim import SimScheduler, WorldSpec, hooks, run_sim
from repro.sim.explore import explore

CAPACITY = 2_000
N_TASKS = 4
OPS_PER_TASK = 12


def _hammer_once(seed):
    cache = ResultCache(max_bytes=CAPACITY)
    sim = SimScheduler(seed)
    torn = []

    def worker(task_index):
        def fn():
            for op in range(OPS_PER_TASK):
                key = f"query-{(task_index + op) % 5}"
                value = (key, f"payload-{task_index}-{op}" * 8)
                cache.put(key, value, nbytes=300 + 40 * task_index)
                # The budget holds at every observable instant, not
                # just at the end of the run.
                if cache.byte_size > CAPACITY:
                    torn.append(f"budget exceeded: {cache.byte_size}")
                hooks.step("hammer.read", task=task_index, op=op)
                got = cache.get(key)
                # A read is either a miss (evicted underneath us) or a
                # value some task wrote under this exact key — never a
                # splice of two entries.
                if got is not None and got[0] != key:
                    torn.append(f"torn read: {key} -> {got[0]}")
        return fn

    for task_index in range(N_TASKS):
        sim.spawn(f"hammer-{task_index}", worker(task_index))
    hooks.install(sim)
    try:
        sim.run()
    finally:
        hooks.uninstall(sim)
    return cache, torn, sim


@pytest.mark.parametrize("seed", range(10))
def test_unit_hammer_interleavings(seed):
    cache, torn, sim = _hammer_once(seed)
    assert torn == []
    report = cache.integrity_report()
    assert report["consistent"], report
    assert report["bytes"] <= CAPACITY
    assert cache.stats.insertions == N_TASKS * OPS_PER_TASK
    # The interleaving genuinely entered the critical section.
    assert any(site == "cache.put" for _, site, _ in sim.events)


def test_unit_hammer_is_deterministic():
    first_cache, _, first_sim = _hammer_once(seed=0)
    second_cache, _, second_sim = _hammer_once(seed=0)
    assert first_sim.events == second_sim.events
    assert (first_cache.integrity_report()
            == second_cache.integrity_report())


def test_deployment_sweep_under_epc_pressure():
    # Pressure-heavy chaos: every run fires EPC spikes while search
    # traffic populates the cache; the post-run accounting audit (the
    # history-integrity oracle covers the result cache too) and every
    # other oracle must hold.
    base = WorldSpec(seed=0, replicas=1, clients=3, ops_per_client=3,
                     chaos=("pressure", "pressure", "advance",
                            "pressure", "checkpoint"))
    result = explore(base, seeds=range(8), shrink_failures=False)
    assert result.ok, [f.violations for f in result.failures]


def test_eviction_storm_stays_within_budget():
    # Entries sized so each insert evicts: the eviction loop runs
    # while other tasks are parked at the in-lock step point.
    report = run_sim(WorldSpec(seed=5, replicas=1, clients=2,
                               ops_per_client=4, history_capacity=8,
                               chaos=("pressure", "advance")))
    assert report.ok, report.violations
