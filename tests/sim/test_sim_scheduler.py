"""Unit tests for the seeded cooperative scheduler itself.

These test the harness, not the system under test: the scheduler's
whole value is that (seed, interleaving) fully determines the run, so
every property here — identical schedules on identical seeds, replay
from a recorded decision list, lock-yield instead of native blocking,
deadlock detection — is load-bearing for the higher-level sim tests.
"""

from __future__ import annotations

import threading

import pytest

from repro.sim import (
    SimAwareLock,
    SimDeadlockError,
    SimError,
    SimScheduler,
    hooks,
)


def _run_counter_tasks(seed, *, interleaving=0, schedule=()):
    """Three tasks interleaving appends to a shared log."""
    sim = SimScheduler(seed, interleaving, schedule=schedule)
    log = []

    def worker(name, steps=4):
        def fn():
            for index in range(steps):
                hooks.step("tick", index=index)
                log.append((name, index))
        return fn

    for name in ("a", "b", "c"):
        sim.spawn(name, worker(name))
    hooks.install(sim)
    try:
        sim.run()
    finally:
        hooks.uninstall(sim)
    return sim, log


def test_same_seed_same_interleaving():
    sim1, log1 = _run_counter_tasks(seed=7)
    sim2, log2 = _run_counter_tasks(seed=7)
    assert sim1.schedule == sim2.schedule
    assert sim1.events == sim2.events
    assert log1 == log2


def test_different_seeds_differ():
    # Not guaranteed for any single pair, so scan a few: at least one
    # other seed must produce a different interleaving than seed 7.
    _, log7 = _run_counter_tasks(seed=7)
    assert any(
        _run_counter_tasks(seed=other)[1] != log7
        for other in (8, 9, 10, 11)
    )


def test_interleaving_index_varies_schedule():
    _, log0 = _run_counter_tasks(seed=7, interleaving=0)
    assert any(
        _run_counter_tasks(seed=7, interleaving=i)[1] != log0
        for i in (1, 2, 3)
    )


def test_replay_schedule_reproduces_run():
    sim1, log1 = _run_counter_tasks(seed=7)
    sim2, log2 = _run_counter_tasks(seed=999,  # RNG would differ...
                                    schedule=sim1.schedule)
    # ...but the explicit schedule overrides every decision.
    assert sim2.schedule == sim1.schedule
    assert log2 == log1


def test_partial_replay_composes_with_rng():
    sim1, _ = _run_counter_tasks(seed=7)
    prefix = sim1.schedule[:5]
    sim2, _ = _run_counter_tasks(seed=7, schedule=prefix)
    assert sim2.schedule[:5] == prefix
    # The run still completes: the RNG takes over after the prefix.
    assert len(sim2.schedule) >= len(prefix)


def test_task_error_propagates():
    sim = SimScheduler(seed=1)

    def boom():
        hooks.step("pre")
        raise ValueError("injected task failure")

    sim.spawn("boom", boom)
    hooks.install(sim)
    try:
        with pytest.raises(ValueError, match="injected task failure"):
            sim.run()
    finally:
        hooks.uninstall(sim)


def test_sim_aware_lock_yields_and_serialises():
    sim = SimScheduler(seed=3)
    lock = SimAwareLock("shared")
    inside = []

    def worker(name):
        def fn():
            for _ in range(3):
                with lock:
                    inside.append(name)
                    hooks.step("critical", who=name)
                    # No other task may have entered while we yielded.
                    assert inside[-1] == name
                    inside.pop()
        return fn

    for name in ("x", "y"):
        sim.spawn(name, worker(name))
    hooks.install(sim)
    try:
        sim.run()
    finally:
        hooks.uninstall(sim)
    assert inside == []


def test_deadlock_detected():
    sim = SimScheduler(seed=5)
    lock_a = SimAwareLock("a")
    lock_b = SimAwareLock("b")

    def grab(first, second):
        def fn():
            with first:
                hooks.step("held-one")
                with second:
                    hooks.step("held-both")
        return fn

    sim.spawn("ab", grab(lock_a, lock_b))
    sim.spawn("ba", grab(lock_b, lock_a))
    hooks.install(sim)
    try:
        # Classic lock-order inversion: some interleavings deadlock,
        # others slip through.  Whatever happens must be *detected*
        # (SimDeadlockError), never a native hang.
        try:
            sim.run()
        except SimDeadlockError:
            pass
    finally:
        hooks.uninstall(sim)


def test_unmanaged_threads_fall_through():
    sim = SimScheduler(seed=1)
    sim.spawn("only", lambda: hooks.step("noop"))
    hooks.install(sim)
    try:
        # The (unmanaged) test thread steps natively: no-op, no record.
        hooks.step("from-test-thread")
        assert not sim.events
        lock = SimAwareLock("native")
        with lock:
            assert lock.locked()
        sim.run()
    finally:
        hooks.uninstall(sim)
    assert [site for _, site, _ in sim.events] == ["noop"]


def test_single_controller_enforced():
    sim = SimScheduler(seed=1)
    hooks.install(sim)
    try:
        with pytest.raises(RuntimeError):
            hooks.install(SimScheduler(seed=2))
    finally:
        hooks.uninstall(sim)
    assert hooks.current_controller() is None


def test_run_is_single_shot():
    sim = SimScheduler(seed=1)
    sim.spawn("t", lambda: None)
    hooks.install(sim)
    try:
        sim.run()
        with pytest.raises(SimError):
            sim.run()
        with pytest.raises(SimError):
            sim.spawn("late", lambda: None)
    finally:
        hooks.uninstall(sim)


def test_max_steps_bounds_livelock():
    sim = SimScheduler(seed=1, max_steps=20)
    stop = threading.Event()

    def spinner():
        while not stop.is_set():
            hooks.step("spin")

    sim.spawn("spinner", spinner)
    hooks.install(sim)
    try:
        with pytest.raises(SimError, match="max_steps"):
            sim.run()
    finally:
        stop.set()
        hooks.uninstall(sim)
