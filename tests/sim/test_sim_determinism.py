"""Same seed, same world, same digest — the DST reproducibility claim.

A failing seed is only useful if it replays: these tests prove that a
whole-cluster run (replicas, failover chaos, client traffic, fault
schedules) is a pure function of its :class:`WorldSpec`, including for
runs that *fail* (the planted-bug world), and that a recorded schedule
replays the identical trace through a fresh scheduler.
"""

from __future__ import annotations

from repro.sim import WorldSpec, chaos_schedule, run_sim

CLEAN = WorldSpec(seed=17, replicas=2, clients=2, ops_per_client=3,
                  chaos=("kill", "advance", "checkpoint"))

FAILING = WorldSpec(seed=3, replicas=1, clients=3, ops_per_client=4,
                    history_capacity=16, mutation="history-unlocked")


def test_clean_run_digest_is_reproducible():
    first = run_sim(CLEAN)
    second = run_sim(CLEAN)
    assert first.ok, first.violations
    assert second.digest == first.digest
    assert second.schedule == first.schedule


def test_failing_run_replays_byte_identically():
    # The acceptance bar: force a failure, then replay it twice and
    # get the identical trace digest *and* the identical violations.
    first = run_sim(FAILING)
    second = run_sim(FAILING)
    assert not first.ok
    assert second.digest == first.digest
    assert second.violations == first.violations
    assert second.schedule == first.schedule


def test_recorded_schedule_replays_same_digest():
    first = run_sim(CLEAN)
    replayed = run_sim(CLEAN, schedule=first.schedule)
    assert replayed.digest == first.digest


def test_different_seeds_give_different_digests():
    digests = {run_sim(CLEAN.replace(seed=seed)).digest
               for seed in (17, 18, 19)}
    assert len(digests) == 3


def test_interleaving_index_explores_new_schedules():
    digests = {run_sim(CLEAN.replace(interleaving=i)).digest
               for i in (0, 1, 2)}
    assert len(digests) >= 2


def test_chaos_schedule_is_seed_deterministic():
    assert chaos_schedule(42) == chaos_schedule(42)
    schedules = {chaos_schedule(seed) for seed in range(8)}
    assert len(schedules) >= 2


def test_report_artifact_is_self_describing():
    report = run_sim(FAILING)
    artifact = report.to_artifact()
    assert artifact["spec"]["seed"] == FAILING.seed
    assert artifact["spec"]["mutation"] == "history-unlocked"
    assert artifact["digest"] == report.digest
    assert artifact["violations"]
