"""The PR-depth smoke sweep: hundreds of seeded worlds, zero violations.

Every run drives a full deployment (replica cluster, chaos schedule,
client traffic) through a fresh interleaving and checks *all* invariant
oracles — per-session FIFO, exactly-one-outcome, no cross-user dedup,
sealed-history convergence, balanced spans, in-enclave accounting.
Failures print the spec + digest, which is the reproduction recipe
(see docs/TESTING.md).
"""

from __future__ import annotations

from repro.sim import WorldSpec
from repro.sim.explore import explore
from repro.sim.invariants import INVARIANTS

#: 100 seeds x 2 interleavings = 200 whole-cluster runs.
SEEDS = range(100)
INTERLEAVINGS = 2


def test_smoke_sweep_is_clean():
    base = WorldSpec(seed=0)  # chaos filled per-seed by explore()
    result = explore(base, seeds=SEEDS, interleavings=INTERLEAVINGS,
                     shrink_failures=False)
    assert result.runs >= 200
    assert result.ok, "\n".join(
        f"seed={f.spec.seed} il={f.spec.interleaving} "
        f"chaos={f.spec.chaos} digest={f.digest[:16]}: {f.violations}"
        for f in result.failures
    )


def test_every_oracle_is_wired():
    # The sweep is only as strong as its oracle list; pin the roster so
    # dropping one is a visible diff, not a silent coverage loss.
    assert sorted(INVARIANTS) == sorted([
        "exactly-one-outcome",
        "trace-oracles",
        "per-session-fifo",
        "no-cross-user-dedup",
        "session-pin-stability",
        "sealed-convergence",
        "history-integrity",
    ])
