"""Mutation sanity gate: the harness must catch a planted bug.

An invariant suite that never fires is indistinguishable from one that
checks nothing, so this gate plants a known concurrency bug — the
history table's lock replaced with a no-op (``history-unlocked``) —
and requires the explorer to find it within the PR-depth seed budget.
The dual check (the *unmutated* worlds stay clean) keeps the oracles
honest in the other direction: no false alarms.
"""

from __future__ import annotations

import pytest

from repro.sim import MUTATIONS, WorldSpec, apply_mutation
from repro.sim.explore import explore, shrink

#: Ingest-heavy little world: three clients hammering one replica's
#: history table maximises append/append interleavings.
GATE_SPEC = WorldSpec(seed=0, replicas=1, clients=3, ops_per_client=4,
                      history_capacity=16, chaos=(),
                      mutation="history-unlocked")

#: PR-depth budget (the CI smoke uses the same order of magnitude).
PR_SEED_BUDGET = range(6)


def test_planted_history_race_is_caught_within_pr_budget():
    result = explore(GATE_SPEC, seeds=PR_SEED_BUDGET,
                     shrink_failures=False, stop_after=1)
    assert result.failures, (
        "mutation gate FAILED: the history-unlocked bug survived "
        f"{result.runs} runs — the invariant oracles are not looking"
    )
    violations = result.failures[0].violations
    assert any("history-integrity" in v for v in violations), violations


def test_unmutated_worlds_stay_clean():
    clean = explore(GATE_SPEC.replace(mutation=None),
                    seeds=PR_SEED_BUDGET, shrink_failures=False)
    assert clean.ok, [f.violations for f in clean.failures]


def test_shrinker_reduces_the_failing_world():
    failing = GATE_SPEC.replace(seed=1)
    shrunk = shrink(failing)
    # The shrunk world must still fail, and be no larger than the
    # original on every size dimension.
    assert shrunk.clients <= failing.clients
    assert shrunk.ops_per_client <= failing.ops_per_client
    from repro.sim import run_sim
    assert run_sim(shrunk).violations


def test_unknown_mutation_is_rejected():
    with pytest.raises(ValueError, match="history-unlocked"):
        apply_mutation(object(), "no-such-mutation")
    assert "history-unlocked" in MUTATIONS
