"""The fault plan's contract: deterministic, composable, inert by default."""

import threading

import pytest

from repro.faults import (
    ENGINE_SITES,
    KIND_CRASH,
    KIND_DROP,
    KIND_GARBLE,
    KIND_REFUSE,
    FaultPlan,
    InjectedFault,
    SITE_ECALL,
    SITE_ENGINE_CONNECT,
    SITE_ENGINE_RECV,
    SITE_ENGINE_SEND,
)
from repro.faults.plan import decide as decide_helper


def drive(plan, site, operations):
    """Consult one site N times; returns the kinds that fired, by index."""
    fired = {}
    for index in range(operations):
        fault = plan.decide(site)
        if fault is not None:
            fired[index] = fault.kind
    return fired


# ----------------------------------------------------------------------
# Trigger styles
# ----------------------------------------------------------------------
def test_indexed_rule_fires_at_exact_operations():
    plan = FaultPlan(seed=1).on(SITE_ENGINE_SEND, KIND_DROP, at=(2, 5))
    assert drive(plan, SITE_ENGINE_SEND, 8) == {2: KIND_DROP, 5: KIND_DROP}


def test_block_unblock_is_an_outage_window():
    plan = FaultPlan(seed=1)
    assert plan.decide(SITE_ENGINE_CONNECT) is None
    handle = plan.block(SITE_ENGINE_CONNECT, KIND_REFUSE)
    assert plan.decide(SITE_ENGINE_CONNECT).kind == KIND_REFUSE
    assert plan.decide(SITE_ENGINE_CONNECT).kind == KIND_REFUSE
    plan.unblock(handle)
    assert plan.decide(SITE_ENGINE_CONNECT) is None
    plan.unblock(handle)  # double-release is harmless


def test_trigger_is_one_shot():
    plan = FaultPlan(seed=1)
    plan.trigger(SITE_ECALL, KIND_CRASH)
    assert plan.decide(SITE_ECALL).kind == KIND_CRASH
    assert plan.decide(SITE_ECALL) is None


def test_probabilistic_rule_respects_limit():
    plan = FaultPlan(seed=3).on(SITE_ENGINE_RECV, KIND_GARBLE,
                                probability=0.5, limit=2)
    fired = drive(plan, SITE_ENGINE_RECV, 50)
    assert len(fired) == 2


def test_rule_needs_a_schedule():
    with pytest.raises(ValueError):
        FaultPlan().on(SITE_ENGINE_SEND, KIND_DROP)
    with pytest.raises(ValueError):
        FaultPlan().on(SITE_ENGINE_SEND, KIND_DROP, probability=1.5)


def test_first_installed_rule_wins():
    plan = FaultPlan(seed=1)
    plan.on(SITE_ENGINE_SEND, KIND_DROP, at=(0,))
    plan.on(SITE_ENGINE_SEND, KIND_GARBLE, at=(0,))
    assert plan.decide(SITE_ENGINE_SEND).kind == KIND_DROP


# ----------------------------------------------------------------------
# Determinism — the load-bearing property
# ----------------------------------------------------------------------
def build(seed):
    plan = FaultPlan(seed=seed)
    plan.on(SITE_ENGINE_RECV, KIND_GARBLE, probability=0.3)
    plan.on(SITE_ENGINE_SEND, KIND_DROP, probability=0.2)
    return plan


def test_same_seed_same_trace():
    runs = []
    for _ in range(2):
        plan = build(seed=42)
        for _ in range(40):
            plan.decide(SITE_ENGINE_RECV)
            plan.decide(SITE_ENGINE_SEND)
        runs.append(plan.trace)
    assert runs[0] == runs[1]
    assert runs[0]  # the schedule actually fired something


def test_different_seed_different_trace():
    traces = []
    for seed in (1, 2):
        plan = build(seed=seed)
        for _ in range(60):
            plan.decide(SITE_ENGINE_RECV)
        traces.append(plan.trace)
    assert traces[0] != traces[1]


def test_trace_independent_of_cross_site_interleaving():
    """Per-rule RNG streams make the per-site decisions identical no
    matter how operations on *other* sites interleave with them."""
    sequential = build(seed=7)
    for _ in range(30):
        sequential.decide(SITE_ENGINE_RECV)
    for _ in range(30):
        sequential.decide(SITE_ENGINE_SEND)

    interleaved = build(seed=7)
    for _ in range(30):
        interleaved.decide(SITE_ENGINE_SEND)
        interleaved.decide(SITE_ENGINE_RECV)

    def per_site(plan):
        faults = {}
        for fault in plan.trace:
            faults.setdefault(fault.site, []).append(
                (fault.operation, fault.kind)
            )
        return faults

    assert per_site(sequential) == per_site(interleaved)


def test_shadowed_probabilistic_rule_still_draws():
    """A blocked site does not shift a later probabilistic schedule:
    shadowed rules consume their RNG draws anyway."""
    def fire_pattern(with_outage):
        plan = FaultPlan(seed=9)
        plan.on(SITE_ENGINE_CONNECT, KIND_REFUSE, probability=0.3)
        handle = None
        pattern = []
        for index in range(40):
            if with_outage and index == 10:
                handle = plan.block(SITE_ENGINE_CONNECT, KIND_DROP)
            if with_outage and index == 20:
                plan.unblock(handle)
            fault = plan.decide(SITE_ENGINE_CONNECT)
            pattern.append(None if fault is None else fault.kind)
        return pattern

    plain = fire_pattern(with_outage=False)
    with_outage = fire_pattern(with_outage=True)
    # Outside the outage window the probabilistic firings are identical.
    assert plain[:10] == with_outage[:10]
    assert plain[20:] == with_outage[20:]


# ----------------------------------------------------------------------
# Bookkeeping
# ----------------------------------------------------------------------
def test_counters_advance_once_per_decide():
    plan = FaultPlan(seed=0)
    for site in ENGINE_SITES:
        assert plan.operations(site) == 0
    plan.decide(SITE_ENGINE_CONNECT)
    plan.decide(SITE_ENGINE_CONNECT)
    assert plan.operations(SITE_ENGINE_CONNECT) == 2
    assert plan.operations(SITE_ENGINE_SEND) == 0


def test_trace_records_site_kind_and_operation():
    plan = FaultPlan(seed=0)
    plan.trigger(SITE_ECALL, KIND_CRASH, detail="mid-run kill")
    plan.decide(SITE_ECALL)
    assert plan.trace == (
        InjectedFault(site=SITE_ECALL, kind=KIND_CRASH, operation=0,
                      detail="mid-run kill"),
    )


def test_none_plan_helper_is_inert():
    assert decide_helper(None, SITE_ENGINE_CONNECT) is None


def test_thread_safe_consultation():
    plan = FaultPlan(seed=5)
    plan.on(SITE_ENGINE_RECV, KIND_GARBLE, probability=0.2)
    errors = []

    def worker():
        try:
            for _ in range(200):
                plan.decide(SITE_ENGINE_RECV)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert plan.operations(SITE_ENGINE_RECV) == 800
