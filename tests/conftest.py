"""Shared fixtures: small-but-realistic instances of every substrate.

Session-scoped where construction is expensive (dataset, engine, RSA
attestation keys) — all consumers treat them as read-only or create their
own mutable views.
"""

from __future__ import annotations

import random

import pytest

from repro.core.deployment import XSearchDeployment
from repro.datasets import AolStyleGenerator, GeneratorConfig, train_test_split
from repro.experiments.context import ContextConfig, ExperimentContext
from repro.search import CorpusConfig, SearchEngine, TrackingSearchEngine


@pytest.fixture(scope="session")
def small_log():
    """A compact query log: 60 users, deterministic."""
    config = GeneratorConfig(n_users=60, mean_queries_per_user=40.0)
    return AolStyleGenerator(config, seed=7).generate()


@pytest.fixture(scope="session")
def split_log(small_log):
    return train_test_split(small_log)


@pytest.fixture(scope="session")
def small_engine():
    """A compact search engine (fewer docs per topic for speed)."""
    return SearchEngine.with_synthetic_corpus(
        seed=3, config=CorpusConfig(docs_per_topic=40)
    )


@pytest.fixture()
def tracking_engine(small_engine):
    return TrackingSearchEngine(small_engine)


@pytest.fixture(scope="session")
def deployment():
    """A fully wired X-Search deployment (shared; treat as append-only)."""
    return XSearchDeployment.create(k=2, seed=11, history_capacity=10_000)


@pytest.fixture(scope="session")
def fast_context():
    """Experiment context at CI scale."""
    return ExperimentContext(ContextConfig.fast())


@pytest.fixture()
def rng():
    return random.Random(1234)
