"""The one-call deployment wiring (Figure 2 end to end)."""

from repro.core.deployment import XSearchDeployment


def test_deployment_searches(deployment):
    results = deployment.client.search("cheap hotel rome flight")
    assert results
    assert all(not r.url.startswith("http://engine.example.com") for r in results)


def test_engine_never_sees_user_identity(deployment):
    deployment.client.search("very identifiable medical query")
    assert deployment.tracking.observed_sources() == ["xsearch-proxy.cloud"]


def test_engine_sees_obfuscated_query(deployment):
    deployment.warm_history(
        [f"warm filler query {i}" for i in range(10)]
    )
    deployment.client.search("sensitive unique condition")
    observation = deployment.tracking.observations[-1]
    assert " OR " in observation.text
    assert "sensitive unique condition" in observation.text


def test_multiple_brokers_share_proxy(deployment):
    second = deployment.new_broker("tenant-2")
    assert second.search("nba standings", 5)


def test_warm_history_counts(deployment):
    assert deployment.warm_history(["a b", "c d", "e f"]) == 3


def test_deployment_components_consistent(deployment):
    assert deployment.proxy.measurement == deployment.proxy.enclave.measurement
    assert deployment.broker.attested
