"""Retry policies and backoff, driven entirely on a virtual clock."""

import pytest

from repro.core.retry import (
    DEFAULT_BROKER_RETRY,
    DEFAULT_ENGINE_RETRY,
    NO_RETRY,
    RetryPolicy,
    call_with_retry,
)
from repro.errors import (
    EngineUnavailableError,
    NetworkError,
    ProtocolError,
    RetryExhaustedError,
    TransientError,
)
from repro.net.clock import VirtualClock


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, exc=TransientError, value="ok"):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"induced failure {self.calls}")
        return self.value


# ----------------------------------------------------------------------
# Policy arithmetic
# ----------------------------------------------------------------------
def test_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                         max_delay=0.5)
    assert policy.backoff_schedule() == (0.1, 0.2, 0.4, 0.5)


def test_zero_base_delay_never_sleeps():
    assert DEFAULT_ENGINE_RETRY.backoff_schedule() == (0.0, 0.0)
    assert DEFAULT_BROKER_RETRY.backoff_schedule() == (0.0,)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------------------
# call_with_retry semantics
# ----------------------------------------------------------------------
def test_retries_transients_until_success():
    flaky = Flaky(failures=2)
    assert call_with_retry(flaky, policy=RetryPolicy(max_attempts=3)) == "ok"
    assert flaky.calls == 3


def test_exhaustion_raises_with_attempts_and_cause():
    flaky = Flaky(failures=10)
    with pytest.raises(RetryExhaustedError) as excinfo:
        call_with_retry(flaky, policy=RetryPolicy(max_attempts=3))
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.last_cause, TransientError)
    assert flaky.calls == 3


def test_non_retryable_errors_pass_straight_through():
    flaky = Flaky(failures=5, exc=ProtocolError)
    with pytest.raises(ProtocolError):
        call_with_retry(flaky, policy=RetryPolicy(max_attempts=3))
    assert flaky.calls == 1  # never retried


def test_plain_network_error_is_not_retried():
    """Only errors with the ``retryable`` flag are retried — a raw
    NetworkError (e.g. HTTP 500) is a real answer, not a transient."""
    flaky = Flaky(failures=5, exc=NetworkError)
    with pytest.raises(NetworkError):
        call_with_retry(flaky, policy=RetryPolicy(max_attempts=3),
                        retry_on=(NetworkError,))
    assert flaky.calls == 1


def test_engine_unavailable_is_retryable_network_error():
    exc = EngineUnavailableError("down")
    assert isinstance(exc, NetworkError)
    assert exc.retryable
    flaky = Flaky(failures=1, exc=EngineUnavailableError)
    assert call_with_retry(flaky, policy=RetryPolicy(max_attempts=2)) == "ok"


def test_no_retry_policy_fails_first_time():
    flaky = Flaky(failures=1)
    with pytest.raises(RetryExhaustedError) as excinfo:
        call_with_retry(flaky, policy=NO_RETRY)
    assert excinfo.value.attempts == 1


# ----------------------------------------------------------------------
# Backoff timing on the virtual clock — no real sleeps anywhere
# ----------------------------------------------------------------------
def test_backoff_sleeps_follow_the_schedule_exactly():
    clock = VirtualClock()
    policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=3.0,
                         max_delay=10.0)
    flaky = Flaky(failures=3)
    assert call_with_retry(flaky, policy=policy, clock=clock) == "ok"
    assert clock.sleeps == [0.1, pytest.approx(0.3), pytest.approx(0.9)]
    assert clock.time() == pytest.approx(1.3)


def test_deadline_cuts_retries_short():
    clock = VirtualClock()
    policy = RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=2.0,
                         max_delay=60.0)
    flaky = Flaky(failures=10)
    with pytest.raises(RetryExhaustedError) as excinfo:
        call_with_retry(flaky, policy=policy, clock=clock,
                        deadline=clock.time() + 4.0)
    # Slept 1 s and 2 s; the next 4 s backoff would overrun the deadline.
    assert clock.sleeps == [1.0, 2.0]
    assert excinfo.value.attempts == 3
    assert "deadline" in str(excinfo.value)


def test_on_retry_hook_sees_each_failure():
    seen = []
    flaky = Flaky(failures=2)
    call_with_retry(flaky, policy=RetryPolicy(max_attempts=3),
                    on_retry=lambda attempt, exc: seen.append(attempt))
    assert seen == [1, 2]
