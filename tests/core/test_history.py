"""The enclave-resident past-query table."""

import random
import threading

import pytest

from repro.core.history import ENTRY_OVERHEAD_BYTES, QueryHistory
from repro.errors import EnclaveError
from repro.sgx.epc import EnclavePageCache
from repro.sgx.runtime import EnclaveMemory


def test_add_and_len():
    history = QueryHistory(10)
    history.add("hotel rome")
    history.add("diabetes")
    assert len(history) == 2


def test_capacity_enforced_fifo():
    history = QueryHistory(3)
    for text in ["a1", "b2", "c3", "d4", "e5"]:
        history.add(text)
    assert len(history) == 3
    assert history.snapshot() == ["c3", "d4", "e5"]


def test_sliding_window_is_most_recent(small_log):
    history = QueryHistory(50)
    texts = [q.text for q in small_log][:200]
    history.extend(texts)
    assert history.snapshot() == texts[-50:]


def test_sample_with_replacement_possible():
    history = QueryHistory(10)
    history.add("only one")
    rng = random.Random(1)
    assert history.sample(3, rng) == ["only one"] * 3


def test_sample_from_empty_returns_nothing():
    assert QueryHistory(10).sample(5, random.Random(1)) == []


def test_sample_zero():
    history = QueryHistory(10)
    history.add("x")
    assert history.sample(0, random.Random(1)) == []


def test_sample_is_uniform_ish():
    history = QueryHistory(100)
    for i in range(100):
        history.add(f"query {i}")
    rng = random.Random(42)
    draws = history.sample(20_000, rng)
    counts = {}
    for text in draws:
        counts[text] = counts.get(text, 0) + 1
    # Each of 100 entries expects 200 draws; allow generous slack.
    assert min(counts.values()) > 100
    assert max(counts.values()) < 350


def test_sample_negative_rejected():
    with pytest.raises(EnclaveError):
        QueryHistory(10).sample(-1, random.Random(1))


def test_byte_accounting():
    history = QueryHistory(10)
    history.add("abcd")
    assert history.byte_size == 4 + ENTRY_OVERHEAD_BYTES
    history.add("xyz")
    assert history.byte_size == 7 + 2 * ENTRY_OVERHEAD_BYTES


def test_byte_accounting_shrinks_on_eviction():
    history = QueryHistory(1)
    history.add("a" * 100)
    history.add("b")
    assert history.byte_size == 1 + ENTRY_OVERHEAD_BYTES


def test_enclave_memory_metering():
    epc = EnclavePageCache()
    memory = EnclaveMemory(epc)
    history = QueryHistory(1000, enclave_memory=memory)
    history.extend(f"query number {i}" for i in range(100))
    assert epc.occupancy_bytes == history.byte_size
    assert epc.occupancy_bytes > 0


def test_invalid_entries_rejected():
    history = QueryHistory(5)
    with pytest.raises(EnclaveError):
        history.add("")
    with pytest.raises(EnclaveError):
        history.add(123)


def test_invalid_capacity_rejected():
    with pytest.raises(EnclaveError):
        QueryHistory(0)


def test_concurrent_adds_and_samples():
    """The table is shared among proxy worker threads (paper §4.1)."""
    history = QueryHistory(500)
    history.add("seed")
    errors = []

    def writer(tag):
        try:
            for i in range(300):
                history.add(f"{tag}-{i}")
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def sampler():
        rng = random.Random(9)
        try:
            for _ in range(300):
                history.sample(3, rng)
                len(history)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,)) for t in "abc"]
    threads += [threading.Thread(target=sampler) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(history) == 500  # capacity bound held under concurrency
