"""Regression: concurrent ``XSearchDeployment.close()`` vs. a dispatch.

The latent race: two threads call ``close()`` while a scheduler worker
sits between collecting a batch and issuing its ecall.  Before the fix,
only the closer that flipped the ``_closed`` flag joined the workers;
any other closer raced ahead and tore the proxy down under the worker,
failing an in-flight request the drain had promised to finish.  The sim
step hook at ``scheduler.batch`` parks the worker exactly in that
window so the race is driven deterministically.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.deployment import DeploymentConfig, XSearchDeployment
from repro.sim import hooks


class _ParkAtBatch:
    """A step controller that parks scheduler workers at the dispatch
    hook until released.  ``step()`` routes every thread's yields here,
    so the controller filters to the threads it means to hold."""

    def __init__(self):
        self.parked = threading.Event()
        self.release = threading.Event()

    def manages_current(self) -> bool:
        # No thread is sim-managed: lock waits stay native, only the
        # step hook below parks anything.
        return False

    def on_step(self, site, info):
        if site != "scheduler.batch":
            return
        if not threading.current_thread().name.startswith(
                "xsearch-scheduler"):
            return
        self.parked.set()
        assert self.release.wait(timeout=30), "controller never released"


@pytest.fixture()
def parked_controller():
    controller = _ParkAtBatch()
    hooks.install(controller)
    yield controller
    controller.release.set()
    hooks.uninstall(controller)


def _poll(predicate, *, steps=50, tick=0.02) -> bool:
    gate = threading.Event()
    for _ in range(steps):
        if predicate():
            return True
        gate.wait(tick)
    return predicate()


def test_concurrent_close_waits_for_inflight_dispatch(parked_controller):
    controller = parked_controller
    config = DeploymentConfig(seed=3, k=2, max_workers=1, connect=True)
    deployment = XSearchDeployment.create(config=config)
    outcome = {}

    def do_search():
        try:
            outcome["results"] = deployment.client.search(
                "cheap hotel rome", limit=3
            )
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            outcome["error"] = exc

    searcher = threading.Thread(target=do_search, daemon=True)
    searcher.start()
    assert controller.parked.wait(timeout=30), "worker never reached batch"

    closers = [threading.Thread(target=deployment.close, daemon=True)
               for _ in range(2)]
    for thread in closers:
        thread.start()
    # Both closers must wait for the parked worker — neither may finish
    # while the dispatch is still in flight.
    assert not _poll(lambda: any(not t.is_alive() for t in closers))

    controller.release.set()
    searcher.join(timeout=30)
    for thread in closers:
        thread.join(timeout=30)
    assert not searcher.is_alive()
    assert not any(thread.is_alive() for thread in closers)

    # The drain kept its promise: the in-flight search succeeded.
    assert "error" not in outcome, f"in-flight search failed: {outcome}"
    assert outcome["results"]

    # And close stays idempotent after the concurrent pile-up.
    deployment.close()


def test_scheduler_close_from_many_threads_is_safe():
    config = DeploymentConfig(seed=4, k=2, max_workers=2, connect=True)
    deployment = XSearchDeployment.create(config=config)
    assert deployment.client.search("nfl playoffs", limit=2)
    closers = [threading.Thread(target=deployment.close, daemon=True)
               for _ in range(4)]
    for thread in closers:
        thread.start()
    for thread in closers:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in closers)
