"""The enclave's HTTPS path to the search engine (paper footnote 2)."""

import pytest

from repro.core.gateway import TlsServerConfig
from repro.core.protocol import SearchRequest, SearchResponse
from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.crypto.https import CertificateAuthority
from repro.crypto.rsa import RsaKeyPair
from repro.errors import AuthenticationError, NetworkError
from repro.search.tracking import TrackingSearchEngine


@pytest.fixture(scope="module")
def engine_pki():
    ca = CertificateAuthority(1024)
    key = RsaKeyPair(1024)
    certificate = ca.issue("engine.example.com", key.public)
    return ca, TlsServerConfig(certificate=certificate, key=key)


def https_proxy(small_engine, engine_pki, *, ca_key=None):
    ca, tls_config = engine_pki
    return XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=2,
        history_capacity=500,
        rng_seed=3,
        engine_ca_key=ca_key if ca_key is not None else ca.public_key,
        engine_tls_config=tls_config,
    )


def run_search(proxy, query="cheap hotel rome", session_id="s"):
    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    endpoint = initiator.finish(proxy.channel_public())
    record = endpoint.encrypt(SearchRequest(query, 10).encode())
    reply = proxy.request(session_id, record)
    return SearchResponse.decode(endpoint.decrypt(reply))


def test_https_search_end_to_end(small_engine, engine_pki):
    proxy = https_proxy(small_engine, engine_pki)
    response = run_search(proxy)
    assert response.results
    assert all(r.title for r in response.results)


def test_https_hides_query_from_the_wire(small_engine, engine_pki):
    """With HTTPS on, even the obfuscated query crosses the boundary only
    inside TLS records — an on-path observer between proxy and engine
    learns nothing."""
    proxy = https_proxy(small_engine, engine_pki)
    run_search(proxy, query="wiretappedquery42", session_id="wire")
    for crossing in proxy.enclave.boundary_log:
        assert b"wiretappedquery42" not in crossing.payload


def test_https_engine_still_observes_obfuscated_query(small_engine,
                                                      engine_pki):
    proxy = https_proxy(small_engine, engine_pki)
    run_search(proxy, query="endpoint visible", session_id="obs")
    tracking = proxy.gateway._engine
    assert "endpoint visible" in tracking.observations[-1].text


def test_https_measurement_differs_from_plain(small_engine, engine_pki):
    ca, _ = engine_pki
    https = https_proxy(small_engine, engine_pki)
    plain = XSearchProxyHost(
        TrackingSearchEngine(small_engine), k=2, history_capacity=500
    )
    assert https.measurement != plain.measurement


def test_wrong_ca_pinned_fails_closed(small_engine, engine_pki):
    """The enclave pins a different CA: the engine's certificate chain
    does not verify and no query is ever sent."""
    other_ca = CertificateAuthority(1024)
    proxy = https_proxy(small_engine, engine_pki, ca_key=other_ca.public_key)
    with pytest.raises(AuthenticationError):
        run_search(proxy, session_id="badca")
    assert not proxy.gateway._engine.observations


def test_engine_without_tls_refuses_https(small_engine):
    ca = CertificateAuthority(1024)
    proxy = XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=1,
        engine_ca_key=ca.public_key,  # enclave wants HTTPS...
        engine_tls_config=None,  # ...but the engine has no certificate
    )
    with pytest.raises(NetworkError):
        run_search(proxy, session_id="no-tls")
