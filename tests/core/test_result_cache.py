"""The in-enclave result cache: LRU semantics, EPC metering, privacy.

The cache exploits the Zipfian query workload: a repeated obfuscated
OR-query is served from enclave memory with *zero* engine ocalls, and
its bytes are charged to the EPC model so Figure 6's memory pressure
applies to it like to the history table.
"""

import pytest

from repro.core.proxy import XSearchProxyHost
from repro.core.protocol import SearchRequest, SearchResponse
from repro.core.result_cache import ResultCache
from repro.crypto.channel import HandshakeInitiator
from repro.errors import EnclaveError
from repro.search.tracking import TrackingSearchEngine
from repro.sgx.epc import EnclavePageCache
from repro.sgx.runtime import EnclaveMemory


# ---------------------------------------------------------------------------
# Unit level: the LRU structure itself
# ---------------------------------------------------------------------------

def test_cache_put_get_roundtrip():
    cache = ResultCache(1024)
    cache.put("q1", ("r1", "r2"), nbytes=100)
    assert cache.get("q1") == ("r1", "r2")
    assert cache.get("missing") is None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_cache_evicts_least_recently_used_first():
    cache = ResultCache(300)
    cache.put("a", "A", nbytes=100)
    cache.put("b", "B", nbytes=100)
    cache.put("c", "C", nbytes=100)
    assert cache.get("a") == "A"  # refresh a: b is now the LRU entry
    cache.put("d", "D", nbytes=100)  # over budget -> evict b
    assert "b" not in cache
    assert cache.get("a") == "A"
    assert cache.get("c") == "C"
    assert cache.get("d") == "D"
    assert cache.stats.evictions == 1
    assert cache.byte_size == 300


def test_cache_refresh_replaces_existing_entry_bytes():
    cache = ResultCache(1000)
    cache.put("k", "old", nbytes=400)
    cache.put("k", "new", nbytes=100)
    assert cache.get("k") == "new"
    assert cache.byte_size == 100
    assert len(cache) == 1


def test_oversized_entry_is_not_cached():
    cache = ResultCache(100)
    cache.put("huge", "x", nbytes=101)
    assert "huge" not in cache
    assert cache.byte_size == 0


def test_cache_rejects_nonpositive_budget():
    with pytest.raises(EnclaveError):
        ResultCache(0)


def test_cache_charges_enclave_memory():
    memory = EnclaveMemory(EnclavePageCache())
    cache = ResultCache(10_000, enclave_memory=memory)
    cache.put("a", "A", nbytes=3000)
    assert memory.occupancy_bytes == 3000
    cache.put("b", "B", nbytes=4000)
    assert memory.occupancy_bytes == 7000
    cache.put("c", "C", nbytes=5000)  # evicts "a"
    assert memory.occupancy_bytes == 9000
    assert cache.stats.evictions == 1


# ---------------------------------------------------------------------------
# Proxy integration: zero engine ocalls on a repeated query
# ---------------------------------------------------------------------------

def make_proxy(engine, **kwargs):
    kwargs.setdefault("k", 0)  # k=0 -> OR-query == query, deterministic
    kwargs.setdefault("history_capacity", 1000)
    kwargs.setdefault("rng_seed", 9)
    return XSearchProxyHost(TrackingSearchEngine(engine), **kwargs)


def connect(proxy, session_id="cache-session"):
    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    return initiator.finish(proxy.channel_public())


def search(proxy, endpoint, query, session_id="cache-session", limit=10):
    record = endpoint.encrypt(SearchRequest(query, limit).encode())
    reply = proxy.request(session_id, record)
    return SearchResponse.decode(endpoint.decrypt(reply))


def test_repeated_query_served_from_cache_with_zero_engine_ocalls(
        small_engine):
    proxy = make_proxy(small_engine)
    endpoint = connect(proxy)

    first = search(proxy, endpoint, "cheap hotel rome")
    assert first.results
    engine_obs = len(proxy.gateway._engine.observations)

    before = proxy.enclave.boundary_snapshot()
    second = search(proxy, endpoint, "cheap hotel rome")
    delta = proxy.enclave.boundary_snapshot() - before

    # One request ecall crossed the boundary; nothing went out to the
    # engine — no connect, no send, no recv, no close.
    assert delta.ecalls == 1
    assert delta.ocalls == 0
    assert delta.ocall_counts == {}
    assert len(proxy.gateway._engine.observations) == engine_obs
    assert [r.url for r in second.results] == [r.url for r in first.results]

    stats = proxy.perf_stats()
    assert stats["cache_hits"] == 1
    assert stats["engine_requests"] == 1


def test_distinct_queries_miss_the_cache(small_engine):
    proxy = make_proxy(small_engine)
    endpoint = connect(proxy)
    search(proxy, endpoint, "hotel rome")
    search(proxy, endpoint, "hotel paris")
    stats = proxy.perf_stats()
    assert stats["cache_hits"] == 0
    assert stats["engine_requests"] == 2


def test_different_limits_are_distinct_cache_entries(small_engine):
    proxy = make_proxy(small_engine)
    endpoint = connect(proxy)
    search(proxy, endpoint, "hotel rome", limit=5)
    search(proxy, endpoint, "hotel rome", limit=10)
    assert proxy.perf_stats()["cache_hits"] == 0
    search(proxy, endpoint, "hotel rome", limit=5)
    assert proxy.perf_stats()["cache_hits"] == 1


def test_cache_disabled_always_hits_the_engine(small_engine):
    proxy = make_proxy(small_engine, cache_bytes=0)
    endpoint = connect(proxy)
    search(proxy, endpoint, "cheap hotel rome")
    search(proxy, endpoint, "cheap hotel rome")
    stats = proxy.perf_stats()
    assert stats["cache_hits"] == 0
    assert stats["engine_requests"] == 2
    assert len(proxy.gateway._engine.observations) == 2


def test_cache_memory_is_charged_to_the_epc_model(small_engine):
    proxy = make_proxy(small_engine)
    endpoint = connect(proxy)
    assert "xsearch.result_cache" not in proxy.enclave.memory
    occupancy_before = proxy.enclave.memory.occupancy_bytes
    search(proxy, endpoint, "cheap hotel rome")
    assert "xsearch.result_cache" in proxy.enclave.memory
    cache_bytes = proxy.enclave.memory.size_of("xsearch.result_cache")
    assert cache_bytes > 0
    assert proxy.enclave.memory.occupancy_bytes > occupancy_before
    assert proxy.perf_stats()["cache_bytes"] == cache_bytes


def test_cache_evicts_under_its_byte_budget(small_engine):
    """A tiny cache budget forces LRU eviction while serving correctly."""
    proxy = make_proxy(small_engine, cache_bytes=2048)
    endpoint = connect(proxy)
    for i in range(12):
        search(proxy, endpoint, f"hotel rome {i}")
    stats = proxy.perf_stats()
    assert stats["cache_evictions"] > 0
    assert stats["cache_bytes"] <= 2048
    # The EPC charge shrank along with the evictions.
    assert proxy.enclave.memory.size_of("xsearch.result_cache") <= 2048


def test_cache_pages_swap_under_a_small_epc(small_engine):
    """Under a small EPC the cache competes for pages: filling it drives
    the paging machinery (EWB/ELDU events), observable in the EPC stats —
    exactly the Figure 6 pressure applied to the new allocation."""
    epc = EnclavePageCache(usable_bytes=2 * 4096)
    proxy = make_proxy(small_engine, epc=epc, cache_bytes=32 * 1024,
                       pool_connections=True)
    endpoint = connect(proxy)
    swaps_before = epc.stats.copy().swap_events
    for i in range(60):
        search(proxy, endpoint, f"crowded epc probe {i} term{i % 7}")
    assert "xsearch.result_cache" in proxy.enclave.memory
    assert epc.stats.swap_events > swaps_before
    # Served correctly throughout the paging churn.
    assert proxy.perf_stats()["engine_requests"] == 60
