"""Persistent engine connections: ocall accounting and failure recovery.

The tentpole of the hot-path overhaul: the enclave keeps engine sockets
(and established TLS channels) alive across requests, so the steady
state pays only ``send`` + ``recv`` per search instead of the full
``sock_connect``/``send``/``recv``/``recv``/``close`` sequence.
"""

import pytest

from repro.core.gateway import TlsServerConfig
from repro.core.protocol import SearchRequest, SearchResponse
from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.crypto.https import CertificateAuthority
from repro.crypto.rsa import RsaKeyPair
from repro.search.tracking import TrackingSearchEngine


def make_proxy(engine, **kwargs):
    kwargs.setdefault("k", 1)
    kwargs.setdefault("history_capacity", 1000)
    kwargs.setdefault("rng_seed", 21)
    kwargs.setdefault("cache_bytes", 0)  # isolate pooling from caching
    return XSearchProxyHost(TrackingSearchEngine(engine), **kwargs)


def connect(proxy, session_id="pool-session"):
    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    return initiator.finish(proxy.channel_public())


def search(proxy, endpoint, query, session_id="pool-session"):
    record = endpoint.encrypt(SearchRequest(query, 10).encode())
    reply = proxy.request(session_id, record)
    return SearchResponse.decode(endpoint.decrypt(reply))


def test_steady_state_needs_only_send_and_recv(small_engine):
    proxy = make_proxy(small_engine)
    endpoint = connect(proxy)
    search(proxy, endpoint, "warmup query")  # pays the one-time connect

    before = proxy.enclave.boundary_snapshot()
    for i in range(5):
        search(proxy, endpoint, f"steady state query {i}")
    delta = proxy.enclave.boundary_snapshot() - before

    assert delta.ecalls == 5
    assert delta.ocall_counts == {"send": 5, "recv": 5}
    assert "sock_connect" not in delta.ocall_counts
    assert "close" not in delta.ocall_counts


def test_baseline_reconnects_per_request(small_engine):
    """pool_connections=False restores the paper-naive per-request path:
    connect + send + data recv + end-of-response recv + close."""
    proxy = make_proxy(small_engine, pool_connections=False)
    endpoint = connect(proxy)
    search(proxy, endpoint, "warmup query")

    before = proxy.enclave.boundary_snapshot()
    for i in range(5):
        search(proxy, endpoint, f"baseline query {i}")
    delta = proxy.enclave.boundary_snapshot() - before

    assert delta.ocall_counts["sock_connect"] == 5
    assert delta.ocall_counts["close"] == 5
    assert delta.ocall_counts["send"] == 5
    assert delta.ocall_counts["recv"] == 10  # data + empty terminator
    assert delta.ocalls == 25


def test_pool_reuses_a_single_connection(small_engine):
    proxy = make_proxy(small_engine)
    endpoint = connect(proxy)
    for i in range(8):
        search(proxy, endpoint, f"reuse probe {i}")
    stats = proxy.perf_stats()
    assert stats["pool_connects"] == 1
    assert stats["pool_reuses"] == 7
    # Exactly one live fd on the host: the pooled connection.
    assert len(proxy.gateway._connections) == 1


def test_pool_reconnects_after_host_side_close(small_engine):
    """Re-connect-on-failure: if the host kills the pooled socket, the
    next search transparently opens a fresh one."""
    proxy = make_proxy(small_engine)
    endpoint = connect(proxy)
    search(proxy, endpoint, "before the failure")

    for fd in list(proxy.gateway._connections):
        proxy.gateway.close(fd)

    response = search(proxy, endpoint, "after the failure")
    assert response.results is not None
    stats = proxy.perf_stats()
    assert stats["pool_connects"] == 2
    assert stats["pool_disposals"] == 1
    assert len(proxy.gateway._engine.observations) == 2


def test_pooled_and_baseline_results_agree(small_engine):
    pooled = make_proxy(small_engine)
    baseline = make_proxy(small_engine, pool_connections=False)
    pooled_results = search(pooled, connect(pooled), "cheap hotel rome")
    baseline_results = search(baseline, connect(baseline), "cheap hotel rome")
    assert [r.url for r in pooled_results.results] == \
        [r.url for r in baseline_results.results]


# ---------------------------------------------------------------------------
# HTTPS: the TLS channel itself is pooled — one handshake, many requests
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def engine_pki():
    ca = CertificateAuthority(1024)
    key = RsaKeyPair(1024)
    certificate = ca.issue("engine.example.com", key.public)
    return ca, TlsServerConfig(certificate=certificate, key=key)


def test_https_channel_reused_across_requests(small_engine, engine_pki):
    ca, tls_config = engine_pki
    proxy = make_proxy(small_engine, engine_ca_key=ca.public_key,
                       engine_tls_config=tls_config)
    endpoint = connect(proxy)
    search(proxy, endpoint, "tls warmup")

    before = proxy.enclave.boundary_snapshot()
    search(proxy, endpoint, "tls reuse one")
    search(proxy, endpoint, "tls reuse two")
    delta = proxy.enclave.boundary_snapshot() - before

    assert delta.ocall_counts == {"send": 2, "recv": 2}
    stats = proxy.perf_stats()
    assert stats["tls_handshakes"] == 1
    assert stats["pool_connects"] == 1
    assert len(proxy.gateway._engine.observations) == 3


def test_https_baseline_handshakes_per_request(small_engine, engine_pki):
    ca, tls_config = engine_pki
    proxy = make_proxy(small_engine, engine_ca_key=ca.public_key,
                       engine_tls_config=tls_config,
                       pool_connections=False)
    endpoint = connect(proxy)
    search(proxy, endpoint, "tls baseline one")
    search(proxy, endpoint, "tls baseline two")
    assert proxy.perf_stats()["tls_handshakes"] == 2
