"""Sealed history persistence across enclave restarts."""

import pytest

from repro.core.history import QueryHistory
from repro.core.persistence import (
    SealedHistoryStore,
    restore_history,
    snapshot_history,
)
from repro.core.proxy import XSearchProxyHost
from repro.errors import EnclaveError, SealingError
from repro.search.tracking import TrackingSearchEngine
from repro.sgx.measurement import measure_bytes
from repro.sgx.sealing import SealingPlatform


def filled_history(n=20, capacity=100):
    history = QueryHistory(capacity)
    history.extend(f"query {i}" for i in range(n))
    return history


# ---------------------------------------------------------------------------
# Snapshot format
# ---------------------------------------------------------------------------

def test_snapshot_restore_roundtrip():
    history = filled_history()
    restored = restore_history(snapshot_history(history))
    assert restored.snapshot() == history.snapshot()
    assert restored.capacity == history.capacity


def test_restore_rejects_garbage():
    with pytest.raises(SealingError):
        restore_history(b"not json")
    with pytest.raises(SealingError):
        restore_history(b'{"v": 99}')
    with pytest.raises(SealingError):
        restore_history(b'{"v": 1, "capacity": "x", "entries": []}')


# ---------------------------------------------------------------------------
# SealedHistoryStore
# ---------------------------------------------------------------------------

M_GOOD = measure_bytes(b"good proxy build")
M_EVIL = measure_bytes(b"evil proxy build")


def test_store_save_load_roundtrip():
    store = SealedHistoryStore(SealingPlatform())
    history = filled_history()
    store.save("snap", M_GOOD, history)
    restored = store.load("snap", M_GOOD)
    assert restored.snapshot() == history.snapshot()
    assert store.stored_labels() == ["snap"]


def test_store_wrong_measurement_fails():
    store = SealedHistoryStore(SealingPlatform())
    store.save("snap", M_GOOD, filled_history())
    with pytest.raises(SealingError):
        store.load("snap", M_EVIL)


def test_store_blob_is_opaque_ciphertext():
    store = SealedHistoryStore(SealingPlatform())
    store.save("snap", M_GOOD, filled_history())
    blob = store.raw_blob("snap")
    assert b"query 0" not in blob  # host cannot read the history


def test_store_unknown_label():
    store = SealedHistoryStore(SealingPlatform())
    with pytest.raises(SealingError):
        store.load("missing", M_GOOD)
    with pytest.raises(SealingError):
        store.raw_blob("missing")


# ---------------------------------------------------------------------------
# Full restart scenario through the proxy ecalls
# ---------------------------------------------------------------------------

def make_proxy(small_engine, platform, *, capacity=500, k=2):
    return XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=k,
        history_capacity=capacity,
        rng_seed=1,
        sealing_platform=platform,
    )


def ingest_via_session(proxy, texts, session_id="warm"):
    from repro.core.protocol import IngestRequest
    from repro.crypto.channel import HandshakeInitiator

    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    endpoint = initiator.finish(proxy.channel_public())
    record = endpoint.encrypt(IngestRequest(tuple(texts)).encode())
    proxy.request(session_id, record)


def test_proxy_restart_with_sealed_history(small_engine):
    platform = SealingPlatform()
    first = make_proxy(small_engine, platform)
    ingest_via_session(first, [f"persistent query {i}" for i in range(30)])
    blob = first.seal_history()

    # "Restart": a brand-new enclave with the same code and configuration.
    second = make_proxy(small_engine, platform)
    assert second.measurement == first.measurement
    assert second.restore_history(blob) == 30


def test_restore_rejects_different_capacity(small_engine):
    platform = SealingPlatform()
    first = make_proxy(small_engine, platform, capacity=500)
    ingest_via_session(first, ["a b", "c d"])
    blob = first.seal_history()

    other = make_proxy(small_engine, platform, capacity=600)
    # Different capacity => different measurement => unseal fails already.
    with pytest.raises((SealingError, EnclaveError)):
        other.restore_history(blob)


def test_restore_rejects_tampered_blob(small_engine):
    platform = SealingPlatform()
    proxy = make_proxy(small_engine, platform)
    ingest_via_session(proxy, ["a b"])
    blob = bytearray(proxy.seal_history())
    blob[-2] ^= 0x01
    with pytest.raises(SealingError):
        proxy.restore_history(bytes(blob))


def test_restore_rejects_foreign_platform(small_engine):
    first = make_proxy(small_engine, SealingPlatform())
    ingest_via_session(first, ["a b"])
    blob = first.seal_history()

    other_machine = make_proxy(small_engine, SealingPlatform())
    with pytest.raises(SealingError):
        other_machine.restore_history(blob)


def test_sealing_unavailable_without_platform(small_engine):
    proxy = make_proxy(small_engine, None)
    with pytest.raises(EnclaveError):
        proxy.seal_history()
