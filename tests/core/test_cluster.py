"""Multi-enclave cluster: consistent-hash routing, failover, lifecycle.

The claims under test, in the paper's terms: scale-out must not change
what any single enclave sees (a broker session lives on exactly one
replica, so one replica's history never mingles with another's), and a
replica loss must be survivable (the consistent-hash ring re-pins the
dead replica's sessions onto survivors, whose enclaves absorb its
sealed checkpoint, and the displaced brokers re-attest transparently).
"""

from __future__ import annotations

import pytest

from repro.core import (
    DeploymentConfig,
    HashRing,
    RetryPolicy,
    XSearchDeployment,
)
from repro.core.cluster import _ring_point
from repro.errors import EnclaveError, ReproError
from repro.faults import KIND_CRASH, SITE_ECALL, FaultPlan
from repro.obs import TraceChecker, TraceRecorder

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning"
)


def _ids_on(replica_id: str, count: int, members, *, vnodes=64,
            prefix="sess") -> list:
    """Deterministic session ids that the ring pins to ``replica_id``."""
    ring = HashRing(members, vnodes=vnodes)
    out = []
    salt = 0
    while len(out) < count:
        candidate = f"{prefix}-{salt:05d}"
        salt += 1
        if ring.route(candidate) == replica_id:
            out.append(candidate)
    return out


# ----------------------------------------------------------------------
# The hash ring
# ----------------------------------------------------------------------
def test_ring_is_a_pure_function_of_the_member_set():
    keys = [f"key-{i}" for i in range(100)]
    one = HashRing(["a", "b", "c"], vnodes=64)
    two = HashRing(["c", "a", "b"], vnodes=64)  # insertion order differs
    assert [one.route(k) for k in keys] == [two.route(k) for k in keys]


def test_adding_a_member_only_steals_keys_for_the_newcomer():
    keys = [f"key-{i}" for i in range(200)]
    ring = HashRing(["a", "b", "c"], vnodes=64)
    before = {k: ring.route(k) for k in keys}
    ring.add("d")
    after = {k: ring.route(k) for k in keys}
    moved = [k for k in keys if before[k] != after[k]]
    # Consistent hashing's defining property: every moved key moved TO
    # the new member — no key shuffles between surviving members.
    assert all(after[k] == "d" for k in moved)
    # And the newcomer takes roughly its fair share, never a landslide.
    assert 0 < len(moved) < len(keys) // 2


def test_removing_a_member_only_moves_its_own_keys():
    keys = [f"key-{i}" for i in range(200)]
    ring = HashRing(["a", "b", "c"], vnodes=64)
    before = {k: ring.route(k) for k in keys}
    ring.remove("b")
    after = {k: ring.route(k) for k in keys}
    for key in keys:
        if before[key] != "b":
            assert after[key] == before[key]
        else:
            assert after[key] != "b"


def test_ring_rejects_duplicates_and_empty_routing():
    ring = HashRing(["a"])
    with pytest.raises(ValueError):
        ring.add("a")
    ring.remove("a")
    with pytest.raises(EnclaveError):
        ring.route("anything")


def test_ring_points_are_stable_64_bit_values():
    # The ring hash is part of the routing contract (a restarted router
    # must re-derive identical pins), so pin its construction.
    point = _ring_point("replica-0#0")
    assert 0 <= point < 2 ** 64
    assert point == _ring_point("replica-0#0")


# ----------------------------------------------------------------------
# Session routing
# ----------------------------------------------------------------------
def test_sessions_pin_stably_and_match_the_ring_preview():
    config = DeploymentConfig(seed=11, k=2, replicas=3, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        router = deployment.cluster.router
        ids = [f"pin-{i:03d}" for i in range(12)]
        preview = router.ring_map(ids)
        for session_id in ids:
            channel = router.for_session(session_id)
            assert router.pinned(session_id) == preview[session_id]
            # Re-resolving never migrates a live session.
            assert router.for_session(session_id).replica_id \
                == channel.replica_id


def test_requests_stay_on_the_pinned_replica():
    recorder = TraceRecorder()
    config = DeploymentConfig(seed=11, k=2, replicas=2)
    with XSearchDeployment.create(config=config,
                                  recorder=recorder) as deployment:
        members = [h.replica_id for h in deployment.cluster.replicas]
        ids = (_ids_on("replica-0", 2, members)
               + _ids_on("replica-1", 2, members))
        clients = [deployment.client(user_id=f"u{i}", session_id=sid)
                   for i, sid in enumerate(ids)]
        handles = {h.replica_id: h for h in deployment.cluster.replicas}
        before = {rid: h.proxy.enclave.boundary_snapshot().ecall_counts
                  .get("request", 0) for rid, h in handles.items()}
        for client in clients:
            client.search("museum train", limit=2)
            client.search("river cruise", limit=2)
        after = {rid: h.proxy.enclave.boundary_snapshot().ecall_counts
                 .get("request", 0) for rid, h in handles.items()}
        # Two sessions × two searches landed on each replica — and only
        # those: the boundary counters prove zero cross-replica traffic.
        assert after["replica-0"] - before["replica-0"] == 4
        assert after["replica-1"] - before["replica-1"] == 4
    # Every search trace touches exactly one replica.
    for trace in recorder.traces:
        if trace.root.name != "broker.search":
            continue
        replicas_touched = {
            span.attributes["replica"]
            for span in trace.walk()
            if span.name.startswith("cluster.")
            and "replica" in span.attributes
        }
        assert len(replicas_touched) <= 1


def test_router_batches_split_by_pin_and_merge_in_order():
    config = DeploymentConfig(seed=11, k=2, replicas=2, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        members = [h.replica_id for h in deployment.cluster.replicas]
        ids = (_ids_on("replica-0", 1, members, prefix="ba")
               + _ids_on("replica-1", 1, members, prefix="bb"))
        clients = [deployment.client(user_id=f"u{i}", session_id=sid)
                   for i, sid in enumerate(ids)]
        for client in clients:
            results = client.search_batch(
                ["museum train", "river cruise", "city hotel"], limit=2,
            )
            assert len(results) == 3


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
def test_kill_replica_repins_and_brokers_heal_onto_survivors():
    recorder = TraceRecorder()
    config = DeploymentConfig(seed=11, k=2, replicas=2, connect=False)
    with XSearchDeployment.create(config=config,
                                  recorder=recorder) as deployment:
        members = [h.replica_id for h in deployment.cluster.replicas]
        victims = _ids_on("replica-1", 2, members, prefix="vic")
        keepers = _ids_on("replica-0", 2, members, prefix="keep")
        clients = {
            sid: deployment.client(user_id=sid, session_id=sid)
            for sid in victims + keepers
        }
        for client in clients.values():
            assert len(client.search("museum train", limit=2)) >= 0

        router = deployment.cluster.router
        # The deployment's default broker pins one randomly-named
        # session too; count exactly what sits on the victim before
        # the kill rather than assuming only our minted sessions.
        expected = len(router.sessions_on("replica-1"))
        assert expected >= len(victims)
        moved = deployment.cluster.kill_replica("replica-1")
        assert moved == expected
        assert router.healthy_ids() == ("replica-0",)
        assert router.state_of("replica-1") == "dead"

        # Every client — displaced or not — still gets exactly one
        # answer per request; the displaced ones healed exactly once.
        for client in clients.values():
            assert isinstance(client.search("river cruise", limit=2),
                              list)
        assert [clients[sid]._broker.reconnects for sid in victims] \
            == [1, 1]
        assert [clients[sid]._broker.reconnects for sid in keepers] \
            == [0, 0]
        # Healed sessions now live on the survivor.
        for sid, client in clients.items():
            assert router.pinned(client._broker._session_id) \
                == "replica-0"
    violations = TraceChecker().check_recorder(recorder)
    assert violations == []


def test_kill_replica_is_idempotent_and_replays_the_checkpoint():
    config = DeploymentConfig(seed=11, k=2, replicas=2, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        members = [h.replica_id for h in deployment.cluster.replicas]
        sid = _ids_on("replica-1", 1, members, prefix="ck")[0]
        client = deployment.client(user_id="ck", session_id=sid)
        client._broker.ingest(["venice hotels", "rome weather"])
        survivor = deployment.cluster.replica("replica-0")
        # checkpoint_now() reports how many history entries it sealed —
        # the enclave-side count, read without reaching past the ecall
        # surface (replicas>1 auto-provisions the sealing platform).
        entries_before = survivor.proxy.checkpoint_now()

        deployment.cluster.kill_replica("replica-1")
        assert deployment.cluster.router.failover("replica-1") == 0

        # The survivor absorbed the victim's sealed checkpoint, so the
        # ingested queries obfuscate future traffic from day one.
        entries_after = survivor.proxy.checkpoint_now()
        assert entries_after >= entries_before + 2


def test_replica_scoped_fault_plan_drives_automatic_failover():
    plan = FaultPlan(seed=0)
    config = DeploymentConfig(
        seed=11, k=2, replicas=2, connect=False,
        failover_threshold=2,
        replica_fault_plans={1: plan},
    )
    policy = RetryPolicy(max_attempts=4, base_delay=0.0)
    with XSearchDeployment.create(config=config) as deployment:
        members = [h.replica_id for h in deployment.cluster.replicas]
        sids = _ids_on("replica-1", 2, members, prefix="fp")
        clients = [
            deployment.client(user_id=sid, session_id=sid,
                              retry_policy=policy)
            for sid in sids
        ]
        for client in clients:
            client.search("museum train", limit=2)

        # From here every ecall into replica-1 crashes its enclave; the
        # host respawns it but the losses count, and at the threshold
        # the router retires the replica and re-pins its sessions.
        plan.block(SITE_ECALL, KIND_CRASH)
        outcomes = []
        for _ in range(3):
            for client in clients:
                try:
                    client.search("river cruise", limit=2)
                except ReproError:
                    outcomes.append("error")
                else:
                    outcomes.append("ok")
        router = deployment.cluster.router
        assert router.state_of("replica-1") == "dead"
        assert router.healthy_ids() == ("replica-0",)
        # Once failed over, everyone is served by the survivor.
        for client in clients:
            assert isinstance(client.search("city hotel", limit=2), list)
            assert router.pinned(client._broker._session_id) \
                == "replica-0"
        assert "ok" in outcomes  # the cluster never went fully dark


# ----------------------------------------------------------------------
# Elastic lifecycle
# ----------------------------------------------------------------------
def test_add_replica_rebalances_only_future_sessions():
    config = DeploymentConfig(seed=11, k=2, replicas=2, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        router = deployment.cluster.router
        ids = [f"grow-{i:03d}" for i in range(10)]
        for session_id in ids:
            router.for_session(session_id)
        pins_before = {sid: router.pinned(sid) for sid in ids}

        handle = deployment.cluster.add_replica()
        assert handle.replica_id == "replica-2"
        assert deployment.cluster.size == 3
        # Live pins are sticky; only the un-pinned preview moves, and
        # the keys that move all belong to the newcomer.
        for session_id in ids:
            assert router.pinned(session_id) == pins_before[session_id]
        preview = router.ring_map(ids)
        moved = [sid for sid in ids
                 if preview[sid] != pins_before[sid]]
        assert all(preview[sid] == "replica-2" for sid in moved)
        # The new replica serves attested traffic immediately.
        fresh = _ids_on("replica-2", 1,
                        [h.replica_id
                         for h in deployment.cluster.replicas],
                        prefix="fresh")[0]
        client = deployment.client(user_id="fresh", session_id=fresh)
        assert isinstance(client.search("museum train", limit=2), list)


def test_remove_replica_drains_gracefully():
    config = DeploymentConfig(seed=11, k=2, replicas=2, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        members = [h.replica_id for h in deployment.cluster.replicas]
        sid = _ids_on("replica-1", 1, members, prefix="dr")[0]
        client = deployment.client(user_id="dr", session_id=sid)
        client.search("museum train", limit=2)
        moved = deployment.cluster.remove_replica("replica-1")
        # At least our session moved (the deployment's own default
        # broker pins one extra, randomly-named session that may ride
        # along).
        assert moved >= 1
        assert deployment.cluster.router.healthy_ids() == ("replica-0",)
        assert isinstance(client.search("river cruise", limit=2), list)


# ----------------------------------------------------------------------
# Frontend uniformity (the minted-client regression guard)
# ----------------------------------------------------------------------
def test_minted_clients_share_the_single_replica_frontend():
    # Regression guard: minted clients must go through
    # deployment.frontend — the scheduler in concurrent mode — never
    # straight at a proxy (which would bypass coalescing).
    config = DeploymentConfig(seed=11, k=2, max_workers=2)
    with XSearchDeployment.create(config=config) as deployment:
        assert deployment.frontend is deployment.scheduler
        minted = deployment.client(user_id="aux")
        assert minted._broker._proxy is deployment.scheduler
        assert isinstance(minted.search("museum train", limit=2), list)


def test_minted_clients_route_through_the_cluster_router():
    config = DeploymentConfig(seed=11, k=2, replicas=2)
    with XSearchDeployment.create(config=config) as deployment:
        assert deployment.frontend is deployment.cluster.router
        minted = deployment.client(user_id="aux")
        channel = minted._broker._proxy
        assert type(channel).__name__ == "_SessionChannel"
        assert channel.replica_id in {
            h.replica_id for h in deployment.cluster.replicas
        }
        assert isinstance(minted.search("museum train", limit=2), list)
