"""Property-based tests over the paper's two algorithms and the history."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import filter_results
from repro.core.history import ENTRY_OVERHEAD_BYTES, QueryHistory
from repro.core.obfuscation import obfuscate_query
from repro.search.documents import SearchResult

words = st.text(alphabet="abcdefghij", min_size=1, max_size=8)
queries = st.lists(words, min_size=1, max_size=4).map(" ".join)


@given(texts=st.lists(queries, min_size=1, max_size=60),
       capacity=st.integers(min_value=1, max_value=25))
@settings(max_examples=60, deadline=None)
def test_history_never_exceeds_capacity_and_keeps_suffix(texts, capacity):
    history = QueryHistory(capacity)
    history.extend(texts)
    assert len(history) == min(len(texts), capacity)
    assert history.snapshot() == texts[-capacity:]
    expected = sum(
        len(t.encode()) + ENTRY_OVERHEAD_BYTES for t in texts[-capacity:]
    )
    assert history.byte_size == expected


@given(texts=st.lists(queries, min_size=1, max_size=30),
       query=queries,
       k=st.integers(min_value=0, max_value=8),
       seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=80, deadline=None)
def test_obfuscation_invariants(texts, query, k, seed):
    history = QueryHistory(100)
    history.extend(texts)
    past = set(texts)
    obfuscated = obfuscate_query(query, history, k, random.Random(seed))
    # Exactly one original at the recorded index.
    assert obfuscated.subqueries[obfuscated.original_index] == query
    assert len(obfuscated.subqueries) <= k + 1
    # Every fake is a genuine past query.
    for fake in obfuscated.fake_queries:
        assert fake in past
    # Line 9: the query is in the history afterwards.
    assert query in history.snapshot()


def result_from(title_words, snippet_words, rank):
    return SearchResult(
        rank=rank,
        url=f"http://r{rank}.example.com",
        title=" ".join(title_words),
        snippet=" ".join(snippet_words),
        score=1.0,
    )


@given(
    original=queries,
    fakes=st.lists(queries, min_size=0, max_size=4),
    pages=st.lists(
        st.tuples(st.lists(words, max_size=5), st.lists(words, max_size=8)),
        min_size=0, max_size=10,
    ),
)
@settings(max_examples=80, deadline=None)
def test_filtering_invariants(original, fakes, pages):
    results = [
        result_from(title, snippet, rank + 1)
        for rank, (title, snippet) in enumerate(pages)
    ]
    decisions = filter_results(original, fakes, results, explain=True)
    kept = filter_results(original, fakes, results, strip_tracking=False)
    # Decision rule: kept iff the original's score is maximal.
    assert len(decisions) == len(results)
    for decision in decisions:
        assert decision.kept == (
            decision.original_score == decision.best_score
        )
    # Output is a subset, re-ranked 1..n, preserving relative order.
    assert len(kept) == sum(1 for d in decisions if d.kept)
    assert [r.rank for r in kept] == list(range(1, len(kept) + 1))
    kept_urls = [r.url for r in kept]
    source_urls = [d.result.url for d in decisions if d.kept]
    assert kept_urls == source_urls
    # With no fakes, everything survives.
    assert len(filter_results(original, [], results)) == len(results)
