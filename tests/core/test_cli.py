"""The xsearch-demo CLI."""

from repro.cli import main


def test_demo_prints_results(capsys):
    assert main(["cheap", "hotel", "rome", "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "results for 'cheap hotel rome'" in out
    assert "http://" in out


def test_demo_ledger(capsys):
    assert main(["diabetes", "symptoms", "-k", "2", "--ledger"]) == 0
    out = capsys.readouterr().out
    assert "privacy ledger" in out
    assert "engine saw query" in out
    assert " OR " in out  # the obfuscated query is visible in the ledger


def test_demo_handles_no_results(capsys):
    assert main(["zzznonexistentterm"]) == 0
    out = capsys.readouterr().out
    assert "no results" in out
