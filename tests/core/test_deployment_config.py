"""The DeploymentConfig facade and the deprecated-kwarg shims.

The redesign's compatibility promise: ``create(config=...)`` is the one
true spelling, every classic keyword still works (warning once, folding
into the config), and both paths build byte-identical systems.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.core import (
    CONFIG_VERSION,
    DeploymentConfig,
    XSearchDeployment,
)
from repro.faults import FaultPlan


# ----------------------------------------------------------------------
# The value itself
# ----------------------------------------------------------------------
def test_config_is_frozen():
    config = DeploymentConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.k = 5


def test_config_validates_its_fields():
    with pytest.raises(ValueError):
        DeploymentConfig(k=0)
    with pytest.raises(ValueError):
        DeploymentConfig(history_capacity=0)
    with pytest.raises(ValueError):
        DeploymentConfig(replicas=0)
    with pytest.raises(ValueError):
        DeploymentConfig(max_workers=0)
    with pytest.raises(ValueError):
        DeploymentConfig(vnodes=0)
    with pytest.raises(ValueError):
        DeploymentConfig(failover_threshold=0)
    with pytest.raises(ValueError):
        DeploymentConfig(version=CONFIG_VERSION + 1)


def test_config_owns_copies_of_its_dicts():
    options = {"checkpoint_interval": 5}
    config = DeploymentConfig(proxy_options=options)
    options["checkpoint_interval"] = 99
    assert config.proxy_options["checkpoint_interval"] == 5


def test_replace_builds_a_new_value():
    base = DeploymentConfig(k=2, seed=7)
    grown = base.replace(replicas=4)
    assert grown.replicas == 4 and grown.k == 2 and grown.seed == 7
    assert base.replicas == 1  # untouched


def test_concurrent_property_tracks_max_workers():
    assert not DeploymentConfig().concurrent
    assert DeploymentConfig(max_workers=2).concurrent


# ----------------------------------------------------------------------
# The two create() paths
# ----------------------------------------------------------------------
def test_legacy_kwargs_warn_once_and_fold_into_the_config():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with XSearchDeployment.create(seed=11, k=3, history_capacity=64,
                                      connect=False) as deployment:
            config = deployment.config
            assert (config.seed, config.k, config.history_capacity) \
                == (11, 3, 64)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "DeploymentConfig" in str(w.message)]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    for name in ("k", "seed", "history_capacity"):
        assert name in message


def test_config_path_does_not_warn():
    config = DeploymentConfig(seed=11, k=3, connect=False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with XSearchDeployment.create(config=config) as deployment:
            assert deployment.config == config
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_both_paths_build_equivalent_deployments():
    def observe(deployment):
        results = deployment.client.search("museum train", limit=3)
        return (
            deployment.config.replace(connect=True),
            [r.doc_id for r in results]
            if results and hasattr(results[0], "doc_id")
            else [str(r) for r in results],
        )

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with XSearchDeployment.create(seed=11, k=2) as deployment:
            legacy = observe(deployment)
    with XSearchDeployment.create(
            config=DeploymentConfig(seed=11, k=2)) as deployment:
        configured = observe(deployment)
    assert legacy == configured


def test_proxy_passthroughs_still_work_both_ways():
    plan = FaultPlan(seed=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with XSearchDeployment.create(seed=11, k=2, fault_plan=plan,
                                      checkpoint_interval=5,
                                      connect=False) as deployment:
            assert deployment.config.proxy_options["fault_plan"] is plan
            assert deployment.config.proxy_options[
                "checkpoint_interval"] == 5
    config = DeploymentConfig(
        seed=11, k=2, connect=False,
        proxy_options={"fault_plan": FaultPlan(seed=0),
                       "checkpoint_interval": 5},
    )
    with XSearchDeployment.create(config=config) as deployment:
        assert deployment.proxy is not None


def test_mixing_config_and_overrides_folds_with_a_warning():
    base = DeploymentConfig(seed=11, k=2, connect=False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with XSearchDeployment.create(config=base, k=4) as deployment:
            assert deployment.config.k == 4
            assert deployment.config.seed == 11
    assert any(issubclass(w.category, DeprecationWarning)
               for w in caught)


# ----------------------------------------------------------------------
# Uniform cluster surface
# ----------------------------------------------------------------------
def test_single_replica_deployment_keeps_the_classic_frontend():
    config = DeploymentConfig(seed=11, k=2, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        assert deployment.cluster is not None
        assert deployment.cluster.size == 1
        # replicas=1 must stay byte-identical to previous releases: the
        # frontend is the proxy itself, not the router.
        assert deployment.frontend is deployment.proxy


def test_multi_replica_deployment_fronts_the_router():
    config = DeploymentConfig(seed=11, k=2, replicas=2, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        assert deployment.cluster.size == 2
        assert deployment.frontend is deployment.cluster.router
        assert deployment.proxy is deployment.cluster.replicas[0].proxy


def test_replicas_share_the_measurement_and_attestation_plane():
    config = DeploymentConfig(seed=11, k=2, replicas=3, connect=False)
    with XSearchDeployment.create(config=config) as deployment:
        measurements = {
            bytes(h.measurement.value)
            if hasattr(h.measurement, "value") else repr(h.measurement)
            for h in deployment.cluster.replicas
        }
        assert len(measurements) == 1
        client = deployment.client(user_id="any")
        assert client._broker.attested
