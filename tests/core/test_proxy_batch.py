"""The ``request_batch`` ecall: N records, one enclave transition."""

import pytest

from repro.core.protocol import (
    Ack,
    IngestRequest,
    SearchRequest,
    SearchResponse,
)
from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.errors import EnclaveError
from repro.search.tracking import TrackingSearchEngine


@pytest.fixture()
def proxy(small_engine):
    return XSearchProxyHost(
        TrackingSearchEngine(small_engine), k=1, history_capacity=1000,
        rng_seed=13, cache_bytes=0,
    )


def connect(proxy, session_id="batch-session"):
    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    return initiator.finish(proxy.channel_public())


def test_batch_serves_all_records_in_order(proxy):
    endpoint = connect(proxy)
    queries = [f"hotel rome {i}" for i in range(4)]
    batch = [
        ("batch-session",
         endpoint.encrypt(SearchRequest(query, 5).encode()))
        for query in queries
    ]
    replies = proxy.request_batch(batch)
    assert len(replies) == 4
    for reply in replies:
        response = SearchResponse.decode(endpoint.decrypt(reply))
        assert response.results is not None


def test_batch_pays_one_ecall_for_n_records(proxy):
    endpoint = connect(proxy)
    batch = [
        ("batch-session",
         endpoint.encrypt(SearchRequest(f"probe {i}", 5).encode()))
        for i in range(8)
    ]
    before = proxy.enclave.boundary_snapshot()
    proxy.request_batch(batch)
    delta = proxy.enclave.boundary_snapshot() - before
    assert delta.ecalls == 1
    assert delta.ecall_counts == {"request_batch": 1}

    # The same traffic as singles costs 8 ecalls.
    endpoint2 = connect(proxy, "single-session")
    before = proxy.enclave.boundary_snapshot()
    for i in range(8):
        record = endpoint2.encrypt(SearchRequest(f"single {i}", 5).encode())
        proxy.request("single-session", record)
    delta_singles = proxy.enclave.boundary_snapshot() - before
    assert delta_singles.ecalls == 8


def test_batch_mixes_ingest_and_search(proxy):
    endpoint = connect(proxy)
    batch = [
        ("batch-session", endpoint.encrypt(
            IngestRequest(("past one", "past two")).encode())),
        ("batch-session", endpoint.encrypt(
            SearchRequest("hotel rome", 5).encode())),
    ]
    ack_reply, search_reply = proxy.request_batch(batch)
    assert Ack.decode(endpoint.decrypt(ack_reply)).count == 2
    assert SearchResponse.decode(endpoint.decrypt(search_reply)) is not None


def test_empty_batch_returns_empty_tuple(proxy):
    assert proxy.request_batch([]) == ()


def test_batch_with_unknown_session_fails(proxy):
    endpoint = connect(proxy)
    batch = [
        ("ghost-session",
         endpoint.encrypt(SearchRequest("hotel", 5).encode())),
    ]
    with pytest.raises(EnclaveError):
        proxy.request_batch(batch)


def test_batch_records_stay_ciphertext_at_the_boundary(proxy):
    """The batched records cross the boundary as AEAD ciphertext: the
    plaintext query must not appear in the recorded ecall payload."""
    endpoint = connect(proxy)
    secret = "batchedsecretillness99"
    batch = [
        ("batch-session",
         endpoint.encrypt(SearchRequest(secret, 5).encode())),
    ]
    proxy.request_batch(batch)
    payloads = [
        record.payload for record in proxy.enclave.boundary_log
        if record.direction == "ecall" and record.name == "request_batch"
    ]
    assert payloads  # the record ciphertext was captured...
    for payload in payloads:
        assert secret.encode() not in payload  # ...and is not plaintext


def test_client_search_batch_end_to_end(deployment):
    """Through the full attested stack: client → broker → request_batch."""
    queries = ["cheap hotel rome", "diabetes symptoms", "nfl playoffs"]
    before = deployment.proxy.enclave.boundary_snapshot()
    batches = deployment.client.search_batch(queries, limit=5)
    delta = deployment.proxy.enclave.boundary_snapshot() - before
    assert len(batches) == 3
    assert delta.ecall_counts.get("request_batch") == 1
    for results in batches:
        assert isinstance(results, list)


def test_client_search_batch_rejects_blank_queries(deployment):
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        deployment.client.search_batch(["ok", "  "])


def test_client_empty_batch_is_free(deployment):
    """``search_batch([])`` returns ``[]`` without paying a single ecall."""
    before = deployment.proxy.enclave.boundary_snapshot()
    assert deployment.client.search_batch([]) == []
    delta = deployment.proxy.enclave.boundary_snapshot() - before
    assert delta.ecalls == 0
    assert delta.ocalls == 0
