"""Crash-and-restart recovery: checkpoints, respawn, degraded mode.

Everything here drives the real stack through a seeded FaultPlan — no
monkeypatching — and asserts the recovery invariants: the respawned
enclave carries the same measurement, the history comes back exactly as
checkpointed, and clients heal transparently.
"""

import pytest

from repro.core.deployment import XSearchDeployment
from repro.errors import EnclaveError, EnclaveLostError, TransientError
from repro.faults import (
    ENGINE_SITES,
    KIND_CRASH,
    KIND_DROP,
    KIND_GARBLE,
    KIND_PRESSURE,
    KIND_REFUSE,
    KIND_TIMEOUT,
    KIND_TRANSIENT,
    FaultPlan,
    SITE_ATTESTATION,
    SITE_ECALL,
    SITE_ENGINE_RECV,
    SITE_ENGINE_SEND,
    SITE_EPC,
)
from repro.sgx.sealing import SealingPlatform


def faulty_deployment(plan, **kwargs):
    kwargs.setdefault("sealing_platform", SealingPlatform())
    kwargs.setdefault("checkpoint_interval", 2)
    return XSearchDeployment.create(seed=11, k=2, fault_plan=plan, **kwargs)


# ----------------------------------------------------------------------
# Periodic checkpoints
# ----------------------------------------------------------------------
def test_periodic_checkpoint_tracks_request_volume():
    deployment = faulty_deployment(FaultPlan(seed=0))
    with deployment:
        assert deployment.proxy.checkpoint_count == 0
        deployment.client.search("first probe", limit=5)
        deployment.client.search("second probe", limit=5)
        assert deployment.proxy.checkpoint_count == 1
        assert deployment.proxy.last_checkpoint_entries == 2
        deployment.client.search("third probe", limit=5)
        deployment.client.search("fourth probe", limit=5)
        assert deployment.proxy.checkpoint_count == 2
        assert deployment.proxy.last_checkpoint_entries == 4
    # close() takes a final checkpoint on top of the periodic ones.
    assert deployment.proxy.checkpoint_count == 3


def test_no_sealing_platform_means_no_checkpointing():
    deployment = XSearchDeployment.create(seed=11, fault_plan=FaultPlan())
    with deployment:
        deployment.client.search("probe", limit=5)
        assert deployment.proxy.checkpoint_count == 0


# ----------------------------------------------------------------------
# Crash → respawn → restore
# ----------------------------------------------------------------------
def test_crash_respawn_restores_checkpointed_history():
    plan = FaultPlan(seed=0)
    deployment = faulty_deployment(plan)
    with deployment:
        proxy = deployment.proxy
        measurement_before = proxy.measurement
        deployment.client.search("query one", limit=5)
        deployment.client.search("query two", limit=5)
        assert proxy.checkpoint_count == 1

        plan.trigger(SITE_ECALL, KIND_CRASH)
        results = deployment.client.search("query three", limit=5)

        # The request was served: the broker healed behind the scenes.
        assert isinstance(results, list)
        assert proxy.respawn_count == 1
        assert deployment.broker.reconnects == 1
        # Same code + same config = same measurement: clients re-attest
        # against the identity they already trust.
        assert proxy.measurement == measurement_before
        # The sealed checkpoint (2 entries) came back in full.
        assert proxy.last_restore_expected == 2
        assert proxy.last_restore_count == 2


def test_crash_without_checkpoint_restarts_empty_but_alive():
    plan = FaultPlan(seed=0)
    deployment = XSearchDeployment.create(seed=11, fault_plan=plan)
    with deployment:
        deployment.client.search("warmup", limit=5)
        plan.trigger(SITE_ECALL, KIND_CRASH)
        results = deployment.client.search("after crash", limit=5)
        assert isinstance(results, list)
        assert deployment.proxy.respawn_count == 1
        assert deployment.proxy.last_restore_count is None


def test_destroyed_enclave_raises_the_transient_loss_error():
    deployment = XSearchDeployment.create(seed=11)
    deployment.proxy.enclave.destroy()
    with pytest.raises(EnclaveLostError):
        deployment.proxy.enclave.call("perf_stats")
    # ...which is still an EnclaveError for legacy handlers.
    assert issubclass(EnclaveLostError, EnclaveError)
    assert issubclass(EnclaveLostError, TransientError)


def test_closed_host_refuses_work_and_close_is_idempotent():
    deployment = faulty_deployment(FaultPlan(seed=0))
    deployment.client.search("before close", limit=5)
    deployment.close()
    deployment.close()
    with pytest.raises(EnclaveError):
        deployment.proxy.perf_stats()


# ----------------------------------------------------------------------
# Engine-leg faults: retry absorbs, degraded mode backstops
# ----------------------------------------------------------------------
@pytest.mark.parametrize("site,kind", [
    (SITE_ENGINE_SEND, KIND_DROP),
    (SITE_ENGINE_SEND, KIND_TIMEOUT),
    (SITE_ENGINE_RECV, KIND_GARBLE),
    (SITE_ENGINE_RECV, KIND_DROP),
])
def test_single_transport_fault_is_absorbed_by_retry(site, kind):
    plan = FaultPlan(seed=0)
    deployment = faulty_deployment(plan)
    with deployment:
        baseline = deployment.client.search("stable query", limit=5)
        plan.trigger(site, kind)
        retried = deployment.client.search("stable query", limit=5)
        # Serving recovered on a fresh connection — live, not degraded.
        assert not deployment.client.last_degraded
        assert retried == baseline


def test_outage_serves_degraded_from_cache_then_recovers():
    plan = FaultPlan(seed=0)
    deployment = faulty_deployment(plan)
    with deployment:
        live = deployment.client.search("repeated query", limit=5)
        assert not deployment.client.last_degraded

        handles = [plan.block(site, KIND_REFUSE) for site in ENGINE_SITES]
        stale = deployment.client.search("repeated query", limit=5)
        assert deployment.client.last_degraded
        assert stale == live
        stats = deployment.proxy.perf_stats()
        assert stats["degraded_hits"] == 1
        assert stats["engine_retries"] >= 1

        for handle in handles:
            plan.unblock(handle)
        fresh = deployment.client.search("repeated query", limit=5)
        assert not deployment.client.last_degraded
        assert fresh == live


def test_outage_with_cold_cache_fails_with_engine_unavailable():
    from repro.errors import EngineUnavailableError

    plan = FaultPlan(seed=0)
    deployment = faulty_deployment(plan)
    with deployment:
        for site in ENGINE_SITES:
            plan.block(site, KIND_REFUSE)
        with pytest.raises(EngineUnavailableError):
            deployment.client.search("never seen before", limit=5)
        assert deployment.proxy.perf_stats()["engine_failures"] == 1


# ----------------------------------------------------------------------
# EPC pressure and attestation transients
# ----------------------------------------------------------------------
def test_epc_pressure_degrades_performance_not_correctness():
    plan = FaultPlan(seed=0)
    deployment = faulty_deployment(plan)
    with deployment:
        baseline = deployment.client.search("pressure probe", limit=5)
        epc = deployment.proxy.enclave.epc
        swaps_before = epc.stats.swap_events
        plan.trigger(SITE_EPC, KIND_PRESSURE)
        after = deployment.client.search("pressure probe", limit=5)
        assert after == baseline  # contents intact
        assert epc.stats.swap_events > swaps_before  # but pages paid EWB


def test_attestation_transient_is_retried_by_connect():
    plan = FaultPlan(seed=0)
    plan.trigger(SITE_ATTESTATION, KIND_TRANSIENT)
    deployment = faulty_deployment(plan, connect=False)
    with deployment:
        deployment.broker.connect()  # absorbs the injected transient
        assert deployment.broker.attested
        results = deployment.client.search("attested query", limit=5)
        assert isinstance(results, list)


def test_attestation_outage_exhausts_and_surfaces():
    from repro.errors import RetryExhaustedError

    plan = FaultPlan(seed=0)
    plan.block(SITE_ATTESTATION, KIND_TRANSIENT)
    deployment = faulty_deployment(plan, connect=False)
    with deployment:
        with pytest.raises(RetryExhaustedError):
            deployment.broker.connect()
