"""Bounded session table: handshake floods cannot exhaust the EPC."""

import pytest

from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.errors import EnclaveError
from repro.search.tracking import TrackingSearchEngine


def make_proxy(small_engine, max_sessions):
    return XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=1,
        history_capacity=100,
        max_sessions=max_sessions,
        rng_seed=1,
    )


def open_session(proxy, session_id):
    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    return initiator.finish(proxy.channel_public())


def test_session_table_bounded(small_engine):
    proxy = make_proxy(small_engine, max_sessions=5)
    for i in range(12):
        open_session(proxy, f"s{i}")
    sessions = proxy.enclave._instance._sessions
    assert len(sessions) == 5
    # The survivors are the most recent ones.
    assert set(sessions) == {f"s{i}" for i in range(7, 12)}


def test_evicted_session_rejected(small_engine):
    from repro.core.protocol import SearchRequest

    proxy = make_proxy(small_engine, max_sessions=2)
    first = open_session(proxy, "first")
    open_session(proxy, "second")
    open_session(proxy, "third")  # evicts "first"
    record = first.encrypt(SearchRequest("hotel", 5).encode())
    with pytest.raises(EnclaveError):
        proxy.request("first", record)


def test_surviving_sessions_unaffected_by_eviction(small_engine):
    from repro.core.protocol import SearchRequest, SearchResponse

    proxy = make_proxy(small_engine, max_sessions=2)
    open_session(proxy, "old")
    keeper = open_session(proxy, "keeper")
    open_session(proxy, "new")  # evicts "old"
    record = keeper.encrypt(SearchRequest("hotel rome", 5).encode())
    reply = proxy.request("keeper", record)
    response = SearchResponse.decode(keeper.decrypt(reply))
    assert response.results


def test_session_memory_metered(small_engine):
    proxy = make_proxy(small_engine, max_sessions=100)
    before = proxy.enclave.memory.occupancy_bytes
    for i in range(10):
        open_session(proxy, f"m{i}")
    assert proxy.enclave.memory.occupancy_bytes > before


def test_max_sessions_validated(small_engine):
    with pytest.raises(EnclaveError):
        make_proxy(small_engine, max_sessions=0)
