"""The executable Figure 2 trace."""

import pytest

from repro.core.walkthrough import run_walkthrough


@pytest.fixture(scope="module")
def walkthrough():
    return run_walkthrough(query="cheap hotel rome", k=2, seed=13)


def test_six_steps_in_order(walkthrough):
    assert [step.number for step in walkthrough.steps] == [1, 2, 3, 4, 5, 6]


def test_every_step_carries_evidence(walkthrough):
    for step in walkthrough.steps:
        assert step.evidence
        assert step.title


def test_results_were_returned(walkthrough):
    assert walkthrough.results_returned > 0


def test_obfuscation_evidence_mentions_fakes(walkthrough):
    assert "fakes" in walkthrough.steps[1].evidence


def test_engine_evidence_shows_or_query(walkthrough):
    assert " OR " in walkthrough.steps[3].evidence
    assert "xsearch-proxy.cloud" in walkthrough.steps[3].evidence


def test_format_renders(walkthrough):
    rendered = walkthrough.format()
    assert "Figure 2 walkthrough" in rendered
    assert "(6)" in rendered
