"""Satellite stress test: the concurrent scheduler under injected
faults.

N worker threads × M client threads drive a real deployment while a
seeded :class:`FaultPlan` mixes engine outages with one enclave crash.
The invariant under test is *exactly-one-outcome*: every submitted
request terminates in exactly one of

* a reply (possibly served degraded — the broker flags it), or
* a typed :class:`ReproError`;

no request hangs, is double-answered, or disappears.  A second
invariant guards the privacy boundary of coalescing: identical
plaintext queries from *different* users must still cross the enclave
boundary as distinct records (ciphertexts under different session keys
never collide, so the single-flight dedup counter must stay zero).
"""

from __future__ import annotations

import threading

from repro.core.deployment import XSearchDeployment
from repro.errors import ReproError
from repro.faults.plan import (
    KIND_CRASH,
    KIND_DROP,
    FaultPlan,
    SITE_ECALL,
    SITE_ENGINE_SEND,
)
from repro.obs import MetricsRegistry, NullRecorder

N_CLIENTS = 6
REQUESTS_PER_CLIENT = 8


def test_stress_every_request_has_exactly_one_outcome():
    plan = FaultPlan(seed=11)
    # Engine outage windows: two clusters of dropped sends, plus one
    # enclave crash mid-run (the broker heals and resubmits).
    plan.on(SITE_ENGINE_SEND, KIND_DROP, at=(5, 6, 7, 8, 21, 22, 23))
    plan.on(SITE_ECALL, KIND_CRASH, at=(30,))
    registry = MetricsRegistry()
    outcomes = []
    outcome_lock = threading.Lock()

    with XSearchDeployment.create(
        seed=11, k=2, max_workers=4, max_batch=4,
        fault_plan=plan,
        recorder=NullRecorder(), registry=registry,
    ) as deployment:
        clients = [deployment.client(user_id=f"stress-{i}")
                   for i in range(N_CLIENTS)]

        def drive(index, client):
            for j in range(REQUESTS_PER_CLIENT):
                # Every client issues the SAME query text at step j:
                # identical plaintext across different crypto sessions.
                query = f"stress query step {j}"
                try:
                    client.search(query, limit=2)
                except ReproError as exc:
                    outcome = ("error", type(exc).__name__)
                else:
                    outcome = ("degraded" if client.last_degraded
                               else "reply", None)
                with outcome_lock:
                    outcomes.append((index, j, outcome))

        threads = [threading.Thread(target=drive, args=(i, client),
                                    name=f"stress-client-{i}")
                   for i, client in enumerate(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert all(not thread.is_alive() for thread in threads), \
            "a client thread hung: some request never resolved"

        # Exactly one outcome per submitted request.
        assert len(outcomes) == N_CLIENTS * REQUESTS_PER_CLIENT
        seen = {(index, j) for index, j, _ in outcomes}
        assert len(seen) == N_CLIENTS * REQUESTS_PER_CLIENT

        kinds = {}
        for _, _, (kind, _) in outcomes:
            kinds[kind] = kinds.get(kind, 0) + 1
        # The fault plan guarantees the interesting mix actually
        # happened: plenty of clean replies, and every injected fault
        # either surfaced as a typed outcome (degraded reply / error)
        # or was healed transparently (enclave crash -> re-attest and
        # resubmit, which the heal counter records; since sessions that
        # die with their enclave now heal instead of wedging, a fully
        # clean outcome list is legitimate as long as heals happened).
        heals = registry.get("broker.heals")
        healed = heals.value if heals is not None else 0
        assert kinds.get("reply", 0) > 0
        assert (kinds.get("degraded", 0) + kinds.get("error", 0)
                + healed) > 0

        # Coalescing never merges across crypto sessions: identical
        # plaintext from different users produces distinct ciphertext
        # records, so single-flight dedup must never have fired.
        dedup = registry.get("scheduler.dedup_hits")
        assert dedup is None or dedup.value == 0

        # The scheduler really was exercised concurrently.
        batches = registry.get("scheduler.batches")
        assert batches is not None and batches.value > 0
