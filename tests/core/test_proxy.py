"""The X-Search proxy: enclave pipeline and security boundaries."""

import pytest

from repro.core.broker import Broker
from repro.core.protocol import SearchRequest
from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.errors import EnclaveError
from repro.search.tracking import TrackingSearchEngine
from repro.sgx.attestation import AttestationService, QuotingEnclave


@pytest.fixture(scope="module")
def attestation():
    service = AttestationService(1024)
    quoting_enclave = QuotingEnclave(1024)
    service.provision_platform(quoting_enclave)
    return service, quoting_enclave


@pytest.fixture()
def proxy(small_engine, attestation):
    service, quoting_enclave = attestation
    return XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=2,
        history_capacity=1000,
        quoting_enclave=quoting_enclave,
        attestation_service=service,
        rng_seed=5,
    )


def connect_session(proxy, session_id="session-1"):
    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    return initiator.finish(proxy.channel_public())


def test_end_to_end_request(proxy):
    endpoint = connect_session(proxy)
    record = endpoint.encrypt(SearchRequest("cheap hotel rome", 10).encode())
    reply = proxy.request("session-1", record)
    from repro.core.protocol import SearchResponse

    response = SearchResponse.decode(endpoint.decrypt(reply))
    assert response.results
    assert all("redirect?target=" not in r.url for r in response.results)


def test_unknown_session_rejected(proxy):
    with pytest.raises(EnclaveError):
        proxy.request("ghost", b"\x00" * 64)


def test_duplicate_session_rejected(proxy):
    connect_session(proxy, "dup")
    with pytest.raises(EnclaveError):
        connect_session(proxy, "dup")


def test_double_init_rejected(proxy):
    with pytest.raises(EnclaveError):
        proxy.enclave.call("init", k=1, history_capacity=10)


def test_negative_k_rejected(small_engine):
    with pytest.raises(EnclaveError):
        XSearchProxyHost(TrackingSearchEngine(small_engine), k=-1)


def test_history_grows_with_requests(proxy):
    endpoint = connect_session(proxy, "hist")
    occupancy_before = proxy.enclave.memory.occupancy_bytes
    for i in range(3):
        record = endpoint.encrypt(
            SearchRequest(f"unique probe {i}", 5).encode()
        )
        proxy.request("hist", record)
    assert proxy.enclave.memory.occupancy_bytes > occupancy_before


def test_attestation_config_required(small_engine):
    host = XSearchProxyHost(TrackingSearchEngine(small_engine), k=1)
    with pytest.raises(EnclaveError):
        host.attestation_evidence()


def test_k_and_capacity_change_measurement(small_engine, attestation):
    service, quoting_enclave = attestation

    def make(k, capacity):
        return XSearchProxyHost(
            TrackingSearchEngine(small_engine), k=k,
            history_capacity=capacity,
        ).measurement

    assert make(1, 100) != make(2, 100)
    assert make(1, 100) != make(1, 200)
    assert make(1, 100) == make(1, 100)


# ---------------------------------------------------------------------------
# The security property of Figure 2: the host and the engine only ever see
# ciphertext or the (k+1)-way obfuscated query.
# ---------------------------------------------------------------------------

def warm(proxy, endpoint, session_id, count=10):
    from repro.core.protocol import IngestRequest

    record = endpoint.encrypt(
        IngestRequest(
            tuple(f"filler traffic {i}" for i in range(count))
        ).encode()
    )
    proxy.request(session_id, record)


def test_plaintext_query_never_crosses_boundary_alone(proxy):
    endpoint = connect_session(proxy, "sec")
    warm(proxy, endpoint, "sec")
    # Single token so URL encoding cannot disguise it at the boundary.
    secret = "myuniqueillness747"
    record = endpoint.encrypt(SearchRequest(secret, 10).encode())
    proxy.request("sec", record)

    seen_in_or_query = False
    for crossing in proxy.enclave.boundary_log:
        payload = crossing.payload
        if not payload or secret.encode() not in payload:
            continue
        # The only legitimate appearance: embedded in the OR query the
        # enclave sends out for search, flanked by k fakes.
        assert crossing.direction == "ocall"
        assert crossing.name == "send"
        assert payload.count(b"+OR+") >= proxy.k
        seen_in_or_query = True
    assert seen_in_or_query


def test_ecall_records_are_ciphertext(proxy):
    endpoint = connect_session(proxy, "sec2")
    secret = "another confidential query"
    record = endpoint.encrypt(SearchRequest(secret, 10).encode())
    proxy.request("sec2", record)
    ecall_payloads = [
        c.payload for c in proxy.enclave.boundary_log
        if c.direction == "ecall" and c.name == "request"
    ]
    assert ecall_payloads
    for payload in ecall_payloads:
        assert secret.encode() not in payload


def test_engine_sees_only_proxy_source_and_or_query(proxy):
    endpoint = connect_session(proxy, "sec3")
    warm(proxy, endpoint, "sec3")
    secret = "observable unique illness"
    record = endpoint.encrypt(SearchRequest(secret, 10).encode())
    proxy.request("sec3", record)
    tracking = proxy.gateway._engine
    observation = tracking.observations[-1]
    assert observation.source == "xsearch-proxy.cloud"
    assert secret in observation.text
    assert observation.text.count(" OR ") == proxy.k
