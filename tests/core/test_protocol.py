"""Wire protocol encoding/decoding."""

import json

import pytest

from repro.core.protocol import (
    Ack,
    IngestRequest,
    SearchRequest,
    SearchResponse,
    decode_any_request,
)
from repro.errors import ProtocolError
from repro.search.documents import SearchResult


def test_search_request_roundtrip():
    request = SearchRequest(query="hotel rome", limit=10)
    assert SearchRequest.decode(request.encode()) == request


def test_search_request_validation():
    with pytest.raises(ProtocolError):
        SearchRequest(query="", limit=10).encode()
    with pytest.raises(ProtocolError):
        SearchRequest(query="q", limit=0).encode()


def test_search_response_roundtrip():
    results = (
        SearchResult(rank=1, url="http://a.example.com", title="t",
                     snippet="s", score=2.5),
        SearchResult(rank=2, url="http://b.example.com", title="t2",
                     snippet="s2", score=1.0),
    )
    response = SearchResponse(results=results)
    assert SearchResponse.decode(response.encode()).results == results


def test_empty_response_roundtrip():
    assert SearchResponse(results=()).encode()
    assert SearchResponse.decode(SearchResponse(results=()).encode()).results == ()


def test_degraded_flag_roundtrips_and_defaults_false():
    result = SearchResult(rank=1, url="http://a.example.com", title="t",
                          snippet="s", score=2.5)
    degraded = SearchResponse(results=(result,), degraded=True)
    assert SearchResponse.decode(degraded.encode()).degraded is True
    # A normal response does not carry the key at all — the v1 wire
    # format is byte-identical to the pre-degraded-mode encoding.
    normal = SearchResponse(results=(result,))
    assert b"degraded" not in normal.encode()
    assert SearchResponse.decode(normal.encode()).degraded is False


def test_ingest_roundtrip():
    request = IngestRequest(queries=("a", "b"))
    assert IngestRequest.decode(request.encode()) == request


def test_ingest_validation():
    with pytest.raises(ProtocolError):
        IngestRequest(queries=()).encode()
    bad = json.dumps({"v": 1, "op": "ingest", "queries": ["ok", ""]}).encode()
    with pytest.raises(ProtocolError):
        IngestRequest.decode(bad)


def test_ack_roundtrip():
    assert Ack.decode(Ack(5).encode()).count == 5


def test_decode_any_dispatches():
    assert isinstance(
        decode_any_request(SearchRequest("q", 5).encode()), SearchRequest
    )
    assert isinstance(
        decode_any_request(IngestRequest(("q",)).encode()), IngestRequest
    )


def test_decode_any_rejects_unknown_op():
    blob = json.dumps({"v": 1, "op": "mystery"}).encode()
    with pytest.raises(ProtocolError):
        decode_any_request(blob)


def test_version_mismatch_rejected():
    blob = json.dumps({"v": 99, "op": "search", "q": "x", "limit": 5}).encode()
    with pytest.raises(ProtocolError):
        SearchRequest.decode(blob)


def test_malformed_bytes_rejected():
    with pytest.raises(ProtocolError):
        SearchRequest.decode(b"\xff\xfe not json")
    with pytest.raises(ProtocolError):
        SearchRequest.decode(b"[1,2,3]")


def test_wrong_op_rejected():
    blob = SearchRequest("q", 5).encode()
    with pytest.raises(ProtocolError):
        SearchResponse.decode(blob)


def test_malformed_result_entry_rejected():
    blob = json.dumps(
        {"v": 1, "op": "results", "results": [{"rank": "NaN?"}]}
    ).encode()
    with pytest.raises(ProtocolError):
        SearchResponse.decode(blob)


def test_limit_type_enforced():
    blob = json.dumps(
        {"v": 1, "op": "search", "q": "x", "limit": "ten"}
    ).encode()
    with pytest.raises(ProtocolError):
        SearchRequest.decode(blob)
