"""Algorithm 1: obfuscated-query generation invariants."""

import random
from collections import Counter

import pytest

from repro.core.history import QueryHistory
from repro.core.obfuscation import ObfuscatedQuery, obfuscate_query
from repro.errors import ProtocolError


def warmed_history(n=50):
    history = QueryHistory(1000)
    history.extend(f"past query {i}" for i in range(n))
    return history


def test_contains_original_exactly_once():
    history = warmed_history()
    obfuscated = obfuscate_query("my secret", history, 4, random.Random(1))
    assert obfuscated.subqueries.count("my secret") == 1
    assert obfuscated.original == "my secret"


def test_k_fakes_come_from_history():
    history = warmed_history()
    past = set(history.snapshot())
    obfuscated = obfuscate_query("my secret", history, 5, random.Random(2))
    assert len(obfuscated.subqueries) == 6
    assert obfuscated.k == 5
    for fake in obfuscated.fake_queries:
        assert fake in past


def test_history_updated_after_fake_selection():
    """Line 9 of Algorithm 1: H <- Q happens last — a query is never its
    own fake, but it becomes a candidate fake for later queries."""
    history = warmed_history(3)
    obfuscated = obfuscate_query("fresh query", history, 3, random.Random(3))
    assert "fresh query" not in obfuscated.fake_queries
    assert "fresh query" in history.snapshot()


def test_original_position_is_uniform():
    history = warmed_history()
    rng = random.Random(4)
    positions = Counter(
        obfuscate_query("q", history, 3, rng).original_index
        for _ in range(2000)
    )
    assert set(positions) == {0, 1, 2, 3}
    for count in positions.values():
        assert 380 < count < 620  # ~500 each


def test_k_zero_passthrough():
    history = warmed_history()
    obfuscated = obfuscate_query("solo", history, 0, random.Random(5))
    assert obfuscated.subqueries == ("solo",)
    assert obfuscated.fake_queries == ()


def test_cold_start_degrades_gracefully():
    history = QueryHistory(100)  # empty
    obfuscated = obfuscate_query("first ever", history, 3, random.Random(6))
    assert obfuscated.subqueries == ("first ever",)
    # The next query can now use the first as a fake.
    second = obfuscate_query("second", history, 3, random.Random(7))
    assert set(second.fake_queries) == {"first ever"}


def test_as_or_query_format():
    history = warmed_history()
    obfuscated = obfuscate_query("mine", history, 2, random.Random(8))
    rendered = obfuscated.as_or_query()
    assert rendered.split(" OR ") == list(obfuscated.subqueries)


def test_empty_query_rejected():
    with pytest.raises(ProtocolError):
        obfuscate_query("", warmed_history(), 3, random.Random(9))


def test_negative_k_rejected():
    with pytest.raises(ProtocolError):
        obfuscate_query("q", warmed_history(), -1, random.Random(9))


def test_obfuscated_query_accessors():
    obfuscated = ObfuscatedQuery(subqueries=("a", "b", "c"), original_index=1)
    assert obfuscated.original == "b"
    assert obfuscated.fake_queries == ("a", "c")
    assert obfuscated.k == 2
