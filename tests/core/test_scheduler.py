"""RequestScheduler: coalescing, single-flight dedup, per-session FIFO,
failure isolation and shutdown semantics.

The policy tests run against a scripted fake proxy (deterministic, no
threads inside), the integration tests against a real deployment in
concurrent mode.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.deployment import XSearchDeployment
from repro.core.scheduler import RequestScheduler
from repro.errors import EnclaveError, EngineUnavailableError, ReproError
from repro.obs import MetricsRegistry


class FakeProxy:
    """Scripted proxy: records every call, optional gate to hold the
    first call open so a backlog builds behind it, optional per-record
    failures keyed by session id."""

    def __init__(self, *, fail_sessions=(), gate=None):
        self.calls = []
        self.fail_sessions = set(fail_sessions)
        self.gate = gate            # threading.Event the first call waits on
        self._gated_once = False
        self._lock = threading.Lock()
        self.closed = False

    def _maybe_wait(self):
        with self._lock:
            first = not self._gated_once
            self._gated_once = True
        if first and self.gate is not None:
            assert self.gate.wait(timeout=5.0)

    def request(self, session_id, record):
        with self._lock:
            self.calls.append(("request", ((session_id, record),)))
        self._maybe_wait()
        if session_id in self.fail_sessions:
            raise EngineUnavailableError(f"scripted failure: {session_id}")
        return b"reply:" + record

    def request_batch(self, batch):
        batch = tuple(batch)
        with self._lock:
            self.calls.append(("request_batch", batch))
        self._maybe_wait()
        for session_id, _ in batch:
            if session_id in self.fail_sessions:
                raise EngineUnavailableError(
                    f"scripted failure: {session_id}"
                )
        return tuple(b"reply:" + record for _, record in batch)

    def request_many(self, batch):
        batch = tuple(batch)
        with self._lock:
            self.calls.append(("request_many", batch))
        self._maybe_wait()
        entries = []
        for session_id, record in batch:
            if session_id in self.fail_sessions:
                entries.append(
                    ("err",
                     EngineUnavailableError(
                         f"scripted failure: {session_id}"))
                )
            else:
                entries.append(("ok", b"reply:" + record))
        return tuple(entries)

    def close(self):
        self.closed = True

    def measurement(self):
        return b"fake-measurement"


def records_of(proxy, method):
    return [call for name, call in proxy.calls if name == method]


def test_light_load_is_a_plain_request_ecall():
    proxy = FakeProxy()
    with RequestScheduler(proxy, max_workers=2,
                          coalesce_window=0.0) as scheduler:
        reply = scheduler.request("s1", b"r1")
    assert reply == b"reply:r1"
    assert [name for name, _ in proxy.calls] == ["request"]


def test_backlog_coalesces_into_one_request_many_ecall():
    gate = threading.Event()
    proxy = FakeProxy(gate=gate)
    scheduler = RequestScheduler(proxy, max_workers=1, coalesce_window=0.0)
    results = {}

    def submit(sid, record):
        results[sid] = scheduler.request(sid, record)

    threads = [threading.Thread(target=submit, args=("s0", b"head"))]
    threads[0].start()
    while not proxy.calls:          # head request is inside the proxy
        pass
    for i in range(1, 5):
        thread = threading.Thread(target=submit,
                                  args=(f"s{i}", b"record%d" % i))
        thread.start()
        threads.append(thread)
    while len(scheduler._queue) < 4:
        pass
    gate.set()
    for thread in threads:
        thread.join(timeout=5.0)
    scheduler.close()
    assert results["s0"] == b"reply:head"
    assert all(results[f"s{i}"] == b"reply:record%d" % i
               for i in range(1, 5))
    many = records_of(proxy, "request_many")
    assert len(many) == 1 and len(many[0]) == 4


def test_per_record_failure_hits_only_the_failing_session():
    gate = threading.Event()
    proxy = FakeProxy(gate=gate, fail_sessions=("bad",))
    scheduler = RequestScheduler(proxy, max_workers=1, coalesce_window=0.0)
    outcomes = {}

    def submit(sid, record):
        try:
            outcomes[sid] = scheduler.request(sid, record)
        except ReproError as exc:
            outcomes[sid] = exc

    head = threading.Thread(target=submit, args=("head", b"h"))
    head.start()
    while not proxy.calls:
        pass
    threads = [threading.Thread(target=submit, args=(sid, b"x"))
               for sid in ("good-1", "bad", "good-2")]
    for thread in threads:
        thread.start()
    while len(scheduler._queue) < 3:
        pass
    gate.set()
    for thread in [head] + threads:
        thread.join(timeout=5.0)
    scheduler.close()
    assert outcomes["good-1"] == b"reply:x"
    assert outcomes["good-2"] == b"reply:x"
    assert isinstance(outcomes["bad"], EngineUnavailableError)


def test_single_flight_dedup_is_scoped_to_one_session():
    gate = threading.Event()
    registry = MetricsRegistry()
    proxy = FakeProxy(gate=gate)
    scheduler = RequestScheduler(proxy, max_workers=1,
                                 coalesce_window=0.0, registry=registry)
    results = []

    def submit(sid):
        results.append(scheduler.request(sid, b"same-bytes"))

    head = threading.Thread(target=submit, args=("head",))
    head.start()
    while not proxy.calls:
        pass
    # Same session + same record twice -> one queued execution shared;
    # another session with identical bytes -> its own record.
    threads = [threading.Thread(target=submit, args=(sid,))
               for sid in ("alice", "alice", "bob")]
    for thread in threads:
        thread.start()
    while registry.counter("scheduler.dedup_hits").value < 1:
        pass
    while len(scheduler._queue) < 2:
        pass
    gate.set()
    for thread in [head] + threads:
        thread.join(timeout=5.0)
    scheduler.close()
    assert len(results) == 4
    many = records_of(proxy, "request_many")
    assert len(many) == 1
    # alice's duplicate was absorbed; bob's identical bytes were NOT
    # merged across sessions.
    assert sorted(sid for sid, _ in many[0]) == ["alice", "bob"]
    assert registry.counter("scheduler.dedup_hits").value == 1


def test_preformed_batch_executes_alone_with_batch_semantics():
    gate = threading.Event()
    proxy = FakeProxy(gate=gate)
    scheduler = RequestScheduler(proxy, max_workers=1, coalesce_window=0.0)
    outcomes = {}

    def submit_single(sid):
        outcomes[sid] = scheduler.request(sid, b"solo")

    def submit_batch():
        outcomes["batch"] = scheduler.request_batch(
            [("tenant", b"b1"), ("tenant", b"b2")]
        )

    head = threading.Thread(target=submit_single, args=("head",))
    head.start()
    while not proxy.calls:
        pass
    threads = [threading.Thread(target=submit_batch),
               threading.Thread(target=submit_single, args=("other",))]
    for thread in threads:
        thread.start()
    while len(scheduler._queue) < 2:
        pass
    gate.set()
    for thread in [head] + threads:
        thread.join(timeout=5.0)
    scheduler.close()
    assert outcomes["batch"] == (b"reply:b1", b"reply:b2")
    assert outcomes["other"] == b"reply:solo"
    # The pre-formed batch crossed in its own request_batch transition,
    # never merged with the queued single.
    batches = records_of(proxy, "request_batch")
    assert len(batches) == 1
    assert [record for _, record in batches[0]] == [b"b1", b"b2"]


def test_per_session_fifo_keeps_submission_order():
    gate = threading.Event()
    proxy = FakeProxy(gate=gate)
    scheduler = RequestScheduler(proxy, max_workers=4, coalesce_window=0.0)
    order = []
    lock = threading.Lock()

    def submit(record):
        reply = scheduler.request("one-session", record)
        with lock:
            order.append(reply)

    head = threading.Thread(target=submit, args=(b"first",))
    head.start()
    while not proxy.calls:
        pass
    rest = [threading.Thread(target=submit, args=(b"second",)),
            ]
    rest[0].start()
    while not scheduler._queue:
        pass
    gate.set()
    for thread in [head] + rest:
        thread.join(timeout=5.0)
    scheduler.close()
    crossed = [record for _, call in proxy.calls for _, record in
               (call if isinstance(call[0], tuple) else ())]
    assert crossed == [b"first", b"second"]


def test_close_rejects_new_work():
    proxy = FakeProxy()
    scheduler = RequestScheduler(proxy, max_workers=1)
    scheduler.close()
    with pytest.raises(EnclaveError):
        scheduler.request("s", b"r")
    scheduler.close()               # idempotent
    assert not proxy.closed
    scheduler.close(close_proxy=True)
    assert proxy.closed


def test_non_queue_calls_forward_to_the_proxy():
    proxy = FakeProxy()
    with RequestScheduler(proxy, max_workers=1) as scheduler:
        assert scheduler.measurement() == b"fake-measurement"


def test_parameter_validation():
    proxy = FakeProxy()
    with pytest.raises(ValueError):
        RequestScheduler(proxy, max_workers=0)
    with pytest.raises(ValueError):
        RequestScheduler(proxy, max_batch=0)
    with pytest.raises(ValueError):
        RequestScheduler(proxy, coalesce_window=-1.0)
    with pytest.raises(ValueError):
        RequestScheduler(proxy, queue_capacity=0)


# ----------------------------------------------------------------------
# Integration: the real pipeline in concurrent mode
# ----------------------------------------------------------------------
def test_concurrent_deployment_serves_many_clients():
    with XSearchDeployment.create(seed=5, k=2, max_workers=3,
                                  max_batch=4) as deployment:
        assert deployment.scheduler is not None
        assert deployment.frontend is deployment.scheduler
        clients = [deployment.client(user_id=f"user-{i}")
                   for i in range(6)]
        results = {}
        errors = []

        def go(index, client):
            try:
                results[index] = client.search(
                    f"measured query {index}", limit=3
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=go, args=(i, client))
                   for i, client in enumerate(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(results) == 6


def test_default_deployment_has_no_scheduler():
    with XSearchDeployment.create(seed=5, k=2) as deployment:
        assert deployment.scheduler is None
        assert deployment.frontend is deployment.proxy
