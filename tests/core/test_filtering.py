"""Algorithm 2: result-filtering invariants."""

import pytest

from repro.core.filtering import filter_results, score_result
from repro.errors import ProtocolError
from repro.search.documents import SearchResult


def result(rank, title, snippet, url=None):
    return SearchResult(
        rank=rank,
        url=url or f"http://r{rank}.example.com",
        title=title,
        snippet=snippet,
        score=1.0 / rank,
    )


ORIGINAL = "cheap hotel rome"
FAKES = ["diabetes symptoms", "nfl playoffs"]

PAGE = [
    result(1, "hotel rome booking", "cheap hotel rome city centre"),
    result(2, "diabetes symptoms explained", "diabetes symptoms and signs"),
    result(3, "nfl playoffs schedule", "nfl playoffs bracket and scores"),
    result(4, "rome travel guide", "hotel and flight deals for rome"),
]


def test_keeps_results_of_original_query():
    kept = filter_results(ORIGINAL, FAKES, PAGE)
    titles = [r.title for r in kept]
    assert "hotel rome booking" in titles
    assert "rome travel guide" in titles


def test_drops_results_of_fake_queries():
    kept = filter_results(ORIGINAL, FAKES, PAGE)
    titles = [r.title for r in kept]
    assert "diabetes symptoms explained" not in titles
    assert "nfl playoffs schedule" not in titles


def test_tie_favours_keeping():
    # A result matching no query at all scores 0 for everyone: the original
    # attains the (zero) maximum, so Algorithm 2 keeps it.
    neutral = [result(1, "unrelated title", "unrelated words entirely")]
    assert len(filter_results(ORIGINAL, FAKES, neutral)) == 1


def test_reranks_from_one():
    kept = filter_results(ORIGINAL, FAKES, PAGE)
    assert [r.rank for r in kept] == list(range(1, len(kept) + 1))


def test_no_fakes_keeps_everything():
    kept = filter_results(ORIGINAL, [], PAGE)
    assert len(kept) == len(PAGE)


def test_score_result_uses_title_and_snippet():
    r = result(1, "hotel rome", "cheap deals in rome")
    assert score_result("cheap hotel rome", r) == 2 + 2


def test_strip_tracking_applied():
    tracked = [
        SearchResult(
            rank=1,
            url="http://engine.example.com/redirect?target=http://real.example.com/",
            title="hotel rome",
            snippet="cheap hotel rome",
            score=1.0,
        )
    ]
    kept = filter_results(ORIGINAL, FAKES, tracked)
    assert kept[0].url == "http://real.example.com/"
    raw = filter_results(ORIGINAL, FAKES, tracked, strip_tracking=False)
    assert raw[0].url.startswith("http://engine.example.com/redirect")


def test_explain_mode_reports_decisions():
    decisions = filter_results(ORIGINAL, FAKES, PAGE, explain=True)
    assert len(decisions) == len(PAGE)
    kept_map = {d.result.title: d.kept for d in decisions}
    assert kept_map["hotel rome booking"]
    assert not kept_map["diabetes symptoms explained"]
    for decision in decisions:
        assert decision.best_score >= decision.original_score
        assert decision.kept == (
            decision.original_score == decision.best_score
        )


def test_empty_page():
    assert filter_results(ORIGINAL, FAKES, []) == []


def test_original_query_required():
    with pytest.raises(ProtocolError):
        filter_results("", FAKES, PAGE)


def test_fake_equal_to_original_keeps_results():
    # Degenerate duplicate (possible with replacement sampling): scores tie,
    # results of the original survive.
    kept = filter_results(ORIGINAL, [ORIGINAL], PAGE)
    assert any(r.title == "hotel rome booking" for r in kept)
