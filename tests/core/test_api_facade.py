"""The redesigned deployment/client API surface.

One facade: ``with XSearchDeployment.create(...) as deployment`` gives a
context-managed system whose ``client`` attribute is both the default
client and a factory for more (``deployment.client(user_id=...)``).
The pre-redesign spellings keep working behind DeprecationWarnings.
"""

import warnings

import pytest

from repro.core.client import XSearchClient
from repro.core.deployment import XSearchDeployment
from repro.core.retry import RetryPolicy


@pytest.fixture()
def deployment():
    with XSearchDeployment.create(seed=21, k=2) as deployment:
        yield deployment


# ----------------------------------------------------------------------
# Context management and teardown
# ----------------------------------------------------------------------
def test_context_manager_closes_the_proxy():
    with XSearchDeployment.create(seed=21) as deployment:
        deployment.client.search("inside the block", limit=5)
    from repro.errors import EnclaveError

    with pytest.raises(EnclaveError):
        deployment.proxy.perf_stats()


def test_close_drains_the_connection_pool():
    deployment = XSearchDeployment.create(seed=21)
    deployment.client.search("warm the pool", limit=5)
    stats = deployment.proxy.perf_stats()
    assert stats["pool_connects"] >= 1
    assert stats["pool_disposals"] == 0
    deployment.close()
    # The pooled engine socket was closed host-side on shutdown.
    assert not deployment.proxy.gateway.open_connections()


# ----------------------------------------------------------------------
# The client facade
# ----------------------------------------------------------------------
def test_client_attribute_is_the_default_client(deployment):
    results = deployment.client.search("facade query", limit=5)
    assert isinstance(results, list)
    assert deployment.client.queries_sent == 1
    assert deployment.client.user_id == "local-user"


def test_client_is_callable_and_mints_new_sessions(deployment):
    alice = deployment.client(user_id="alice")
    bob = deployment.client(user_id="bob")
    assert isinstance(alice, XSearchClient)
    assert alice.user_id == "alice"
    assert alice._broker is not bob._broker
    assert alice._broker is not deployment.broker

    marker = "facade multi tenant marker"
    alice.search(marker, limit=5)
    assert alice.queries_sent == 1
    assert deployment.client.queries_sent == 0  # default client untouched

    # All sessions share one proxy (and so one obfuscation history).
    bob.search("second tenant query", limit=5)
    assert deployment.proxy.perf_stats()["engine_requests"] >= 2


def test_minted_client_can_defer_connection(deployment):
    lazy = deployment.client(user_id="lazy", connect=False)
    assert not lazy._broker.is_connected
    lazy.search("connects on demand", limit=5)
    assert lazy._broker.is_connected


# ----------------------------------------------------------------------
# Uniform keyword-only call surface
# ----------------------------------------------------------------------
def test_search_accepts_timeout_and_retry_policy(deployment):
    results = deployment.client.search(
        "uniform kwargs", limit=5, timeout=30.0,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    assert isinstance(results, list)
    batches = deployment.client.search_batch(
        ["one query", "two query"], limit=5, timeout=30.0,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    assert len(batches) == 2


def test_limit_is_keyword_only_going_forward(deployment):
    with pytest.raises(TypeError):
        deployment.client.search("too many", 5, 7)


# ----------------------------------------------------------------------
# Deprecated spellings still work — loudly
# ----------------------------------------------------------------------
def test_positional_limit_warns_but_works(deployment):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results = deployment.client.search("legacy positional", 5)
    assert len(results) <= 5
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        deployment.client.search_batch(["legacy batch"], 5)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


def test_broker_positional_limit_warns_but_works(deployment):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results = deployment.broker.search("legacy broker call", 5)
    assert isinstance(results, list)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


def test_new_broker_is_deprecated_but_functional(deployment):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        tenant = deployment.new_broker("facade-tenant")
    assert tenant.is_connected
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


# ----------------------------------------------------------------------
# Empty batches cost nothing
# ----------------------------------------------------------------------
def test_empty_batch_short_circuits_everywhere(deployment):
    before = deployment.proxy.enclave.boundary_snapshot()
    assert deployment.client.search_batch([]) == []
    assert deployment.broker.search_batch([]) == []
    assert deployment.proxy.request_batch([]) == ()
    delta = deployment.proxy.enclave.boundary_snapshot() - before
    assert delta.ecalls == 0
