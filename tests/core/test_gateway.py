"""The host-side socket ocalls and the engine's HTTP front end."""

import json

import pytest

from repro.core.gateway import (
    ENGINE_HOST,
    ENGINE_PORT,
    EngineGateway,
    parse_results_body,
    split_http_response,
)
from repro.errors import NetworkError


@pytest.fixture()
def gateway(tracking_engine):
    return EngineGateway(tracking_engine, source="test-proxy")


def http_get(path):
    return f"GET {path} HTTP/1.1\r\nHost: {ENGINE_HOST}\r\n\r\n".encode()


def exchange(gateway, request_bytes):
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    gateway.send(fd, request_bytes)
    raw = b""
    while True:
        chunk = gateway.recv(fd, 4096)
        if not chunk:
            break
        raw += chunk
    gateway.close(fd)
    return split_http_response(raw)


def test_search_request_roundtrip(gateway):
    status, body = exchange(gateway, http_get("/search?q=hotel+rome&limit=5"))
    assert status == 200
    results = parse_results_body(body)
    assert len(results) == 5
    assert results[0].title


def test_or_query_is_split_and_merged(gateway, tracking_engine):
    status, body = exchange(
        gateway, http_get("/search?q=hotel+rome+OR+diabetes&limit=5")
    )
    assert status == 200
    assert len(parse_results_body(body)) > 5
    assert tracking_engine.observations[-1].text == "hotel rome OR diabetes"


def test_requests_attributed_to_proxy_source(gateway, tracking_engine):
    exchange(gateway, http_get("/search?q=hotel&limit=3"))
    assert tracking_engine.observations[-1].source == "test-proxy"


def test_chunked_send_supported(gateway):
    request = http_get("/search?q=hotel&limit=3")
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    for i in range(0, len(request), 7):
        gateway.send(fd, request[i:i + 7])
    raw = b""
    while True:
        chunk = gateway.recv(fd, 64)
        if not chunk:
            break
        raw += chunk
    status, body = split_http_response(raw)
    assert status == 200


def test_unknown_host_refused(gateway):
    with pytest.raises(NetworkError):
        gateway.sock_connect("evil.example.com", 80)
    with pytest.raises(NetworkError):
        gateway.sock_connect(ENGINE_HOST, 8080)


def test_unknown_fd_rejected(gateway):
    with pytest.raises(NetworkError):
        gateway.send(99, b"x")
    with pytest.raises(NetworkError):
        gateway.recv(99, 10)
    with pytest.raises(NetworkError):
        gateway.close(99)


def test_double_close_rejected(gateway):
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    gateway.close(fd)
    with pytest.raises(NetworkError):
        gateway.close(fd)


def test_404_for_unknown_path(gateway):
    status, body = exchange(gateway, http_get("/other"))
    assert status == 404


def test_400_for_missing_query(gateway):
    status, _ = exchange(gateway, http_get("/search?limit=5"))
    assert status == 400


def test_400_for_bad_limit(gateway):
    status, _ = exchange(gateway, http_get("/search?q=a&limit=ten"))
    assert status == 400


def test_405_for_post(gateway):
    status, _ = exchange(gateway, b"POST /search HTTP/1.1\r\n\r\n")
    assert status == 405


def test_split_http_response_errors():
    with pytest.raises(NetworkError):
        split_http_response(b"HTTP/1.1 200 OK\r\nContent-Length: 5")
    with pytest.raises(NetworkError):
        split_http_response(
            b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort"
        )
    with pytest.raises(NetworkError):
        split_http_response(b"garbage\r\n\r\n")


def test_parse_results_body_errors():
    with pytest.raises(NetworkError):
        parse_results_body(b"not json at all {")
