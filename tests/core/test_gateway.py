"""The host-side socket ocalls and the engine's HTTP front end."""

import json

import pytest

from repro.core.gateway import (
    ENGINE_HOST,
    ENGINE_PORT,
    EngineGateway,
    parse_results_body,
    split_http_response,
)
from repro.errors import NetworkError


@pytest.fixture()
def gateway(tracking_engine):
    return EngineGateway(tracking_engine, source="test-proxy")


def http_get(path):
    return f"GET {path} HTTP/1.1\r\nHost: {ENGINE_HOST}\r\n\r\n".encode()


def exchange(gateway, request_bytes):
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    gateway.send(fd, request_bytes)
    raw = b""
    while True:
        chunk = gateway.recv(fd, 4096)
        if not chunk:
            break
        raw += chunk
    gateway.close(fd)
    status, body, _consumed = split_http_response(raw)
    return status, body


def test_search_request_roundtrip(gateway):
    status, body = exchange(gateway, http_get("/search?q=hotel+rome&limit=5"))
    assert status == 200
    results = parse_results_body(body)
    assert len(results) == 5
    assert results[0].title


def test_or_query_is_split_and_merged(gateway, tracking_engine):
    status, body = exchange(
        gateway, http_get("/search?q=hotel+rome+OR+diabetes&limit=5")
    )
    assert status == 200
    assert len(parse_results_body(body)) > 5
    assert tracking_engine.observations[-1].text == "hotel rome OR diabetes"


def test_requests_attributed_to_proxy_source(gateway, tracking_engine):
    exchange(gateway, http_get("/search?q=hotel&limit=3"))
    assert tracking_engine.observations[-1].source == "test-proxy"


def test_chunked_send_supported(gateway):
    request = http_get("/search?q=hotel&limit=3")
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    for i in range(0, len(request), 7):
        gateway.send(fd, request[i:i + 7])
    raw = b""
    while True:
        chunk = gateway.recv(fd, 64)
        if not chunk:
            break
        raw += chunk
    status, body, _ = split_http_response(raw)
    assert status == 200


def test_unknown_host_refused(gateway):
    with pytest.raises(NetworkError):
        gateway.sock_connect("evil.example.com", 80)
    with pytest.raises(NetworkError):
        gateway.sock_connect(ENGINE_HOST, 8080)


def test_unknown_fd_rejected(gateway):
    with pytest.raises(NetworkError):
        gateway.send(99, b"x")
    with pytest.raises(NetworkError):
        gateway.recv(99, 10)
    with pytest.raises(NetworkError):
        gateway.close(99)


def test_double_close_rejected(gateway):
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    gateway.close(fd)
    with pytest.raises(NetworkError):
        gateway.close(fd)


def test_404_for_unknown_path(gateway):
    status, body = exchange(gateway, http_get("/other"))
    assert status == 404


def test_400_for_missing_query(gateway):
    status, _ = exchange(gateway, http_get("/search?limit=5"))
    assert status == 400


def test_400_for_bad_limit(gateway):
    status, _ = exchange(gateway, http_get("/search?q=a&limit=ten"))
    assert status == 400


def test_405_for_post(gateway):
    status, _ = exchange(gateway, b"POST /search HTTP/1.1\r\n\r\n")
    assert status == 405


def test_split_http_response_errors():
    with pytest.raises(NetworkError):
        split_http_response(b"HTTP/1.1 200 OK\r\nContent-Length: 5")
    with pytest.raises(NetworkError):
        split_http_response(
            b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort"
        )
    with pytest.raises(NetworkError):
        split_http_response(b"garbage\r\n\r\n")
    with pytest.raises(NetworkError):
        split_http_response(b"HTTP/1.1 200 OK\r\nContent-Length: ten\r\n\r\n")


def test_parse_results_body_errors():
    with pytest.raises(NetworkError):
        parse_results_body(b"not json at all {")


# ---------------------------------------------------------------------------
# Keep-alive / pipelined response handling (split_http_response framing)
# ---------------------------------------------------------------------------

def http_response(body: bytes, status=b"200 OK") -> bytes:
    return (b"HTTP/1.1 " + status + b"\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body)


def test_split_reports_consumed_length_and_leaves_trailing_bytes():
    first = http_response(b"alpha")
    second = http_response(b"beta-beta")
    buffer = first + second
    status, body, consumed = split_http_response(buffer)
    assert (status, body, consumed) == (200, b"alpha", len(first))
    status, body, consumed = split_http_response(buffer[consumed:])
    assert (status, body) == (200, b"beta-beta")
    assert consumed == len(second)


def test_split_partial_ok_signals_incomplete_instead_of_raising():
    complete = http_response(b"payload")
    for cut in (0, 10, len(complete) - 1):
        status, body, consumed = split_http_response(
            complete[:cut], partial_ok=True
        )
        assert (status, body, consumed) == (None, b"", 0)
    status, body, consumed = split_http_response(complete, partial_ok=True)
    assert (status, body, consumed) == (200, b"payload", len(complete))


def test_split_rejects_negative_content_length():
    """Regression: a negative Content-Length used to be accepted and
    silently mis-frame the stream (``rest[:-1]`` truncated the body and
    ``consumed`` under-advanced the keep-alive buffer).  It must fail
    closed — even under ``partial_ok``, because it is garbage, not an
    incomplete read."""
    raw = b"HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\nabcdef"
    with pytest.raises(NetworkError):
        split_http_response(raw)
    with pytest.raises(NetworkError):
        split_http_response(raw, partial_ok=True)


def test_split_partial_ok_when_content_length_exceeds_bytes_received():
    """The partial-read boundary: the header may promise more body bytes
    than have arrived so far.  At *every* cut point — mid-header, at the
    header/body boundary, mid-body, one byte short — the splitter must
    report "need more bytes" rather than return a truncated body, and
    once the missing bytes arrive it must frame the response exactly."""
    complete = http_response(b"0123456789abcdef")
    header_end = complete.index(b"\r\n\r\n") + 4
    for cut in range(len(complete)):
        status, body, consumed = split_http_response(
            complete[:cut], partial_ok=True
        )
        assert (status, body, consumed) == (None, b"", 0), (
            f"cut={cut} (header ends at {header_end}) returned a frame "
            f"from an incomplete response"
        )
    status, body, consumed = split_http_response(complete, partial_ok=True)
    assert (status, body, consumed) == (200, b"0123456789abcdef",
                                        len(complete))


def test_keep_alive_reassembly_across_partial_reads(gateway):
    """Drive the enclave's read loop shape against the gateway: bytes
    arrive in tiny chunks, so ``split_http_response(partial_ok=True)``
    repeatedly reports incomplete until the promised Content-Length is
    buffered — then the framed body must match and trailing bytes of a
    pipelined second response must survive in the buffer."""
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    gateway.send(
        fd,
        http_get("/search?q=hotel&limit=2") + http_get("/search?q=rome&limit=3"),
    )
    buffer = bytearray()
    bodies = []
    incomplete_sightings = 0
    while len(bodies) < 2:
        status, body, consumed = split_http_response(buffer, partial_ok=True)
        if status is None:
            chunk = gateway.recv(fd, 7)  # deliberately tiny reads
            assert chunk, "engine closed mid-response"
            buffer += chunk
            incomplete_sightings += 1
            continue
        del buffer[:consumed]
        bodies.append((status, body))
    gateway.close(fd)
    assert incomplete_sightings > 2  # the partial path was actually hit
    assert [s for s, _ in bodies] == [200, 200]
    assert len(parse_results_body(bodies[0][1])) == 2
    assert len(parse_results_body(bodies[1][1])) == 3
    assert not buffer  # nothing dropped, nothing invented


def test_split_without_content_length_consumes_everything():
    raw = b"HTTP/1.1 200 OK\r\n\r\nclose-delimited body"
    status, body, consumed = split_http_response(raw)
    assert status == 200
    assert body == b"close-delimited body"
    assert consumed == len(raw)


def test_keep_alive_connection_serves_multiple_requests(gateway):
    """One fd, three sequential requests — no reconnect in between."""
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    for query in ("hotel", "rome", "hotel+rome"):
        gateway.send(fd, http_get(f"/search?q={query}&limit=3"))
        raw = b""
        while True:
            chunk = gateway.recv(fd, 4096)
            if not chunk:
                break
            raw += chunk
        status, body, _ = split_http_response(raw)
        assert status == 200
        assert parse_results_body(body)
    gateway.close(fd)


def test_pipelined_requests_answered_in_order(gateway):
    """Two requests in one send: both responses are buffered, in order."""
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    gateway.send(
        fd,
        http_get("/search?q=hotel&limit=2") + http_get("/search?q=rome&limit=4"),
    )
    raw = b""
    while True:
        chunk = gateway.recv(fd, 4096)
        if not chunk:
            break
        raw += chunk
    status, first, consumed = split_http_response(raw)
    assert status == 200
    assert len(parse_results_body(first)) == 2
    status, second, _ = split_http_response(raw[consumed:])
    assert status == 200
    assert len(parse_results_body(second)) == 4
    gateway.close(fd)


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------

def test_tls_connect_without_tls_config_refused(gateway):
    from repro.core.gateway import ENGINE_TLS_PORT

    with pytest.raises(NetworkError):
        gateway.sock_connect(ENGINE_HOST, ENGINE_TLS_PORT)


def test_operations_on_closed_fd_rejected(gateway):
    fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
    gateway.close(fd)
    with pytest.raises(NetworkError):
        gateway.send(fd, b"GET /search?q=a HTTP/1.1\r\n\r\n")
    with pytest.raises(NetworkError):
        gateway.recv(fd, 10)


def test_malformed_request_line_gets_400(gateway):
    status, _ = exchange(gateway, b"NOT-HTTP\r\n\r\n")
    assert status == 400


def test_non_utf8_request_line_gets_400(gateway):
    status, _ = exchange(gateway, b"\xff\xfe GARBAGE\r\n\r\n")
    assert status == 400


# ---------------------------------------------------------------------------
# Thread safety: send/recv racing close on the shared descriptor table
# ---------------------------------------------------------------------------

def test_concurrent_sessions_are_thread_safe(tracking_engine):
    """Regression test for the unlocked ``_connections`` lookup: many
    threads opening/using/closing fds concurrently while others churn the
    table must never corrupt it — every thread either completes its
    exchange or sees a clean NetworkError for a closed fd."""
    import threading

    gateway = EngineGateway(tracking_engine, source="race-proxy")
    errors = []
    completed = []

    def worker(worker_id):
        try:
            for i in range(25):
                fd = gateway.sock_connect(ENGINE_HOST, ENGINE_PORT)
                gateway.send(
                    fd, http_get(f"/search?q=worker{worker_id}-{i}&limit=2")
                )
                raw = b""
                while True:
                    chunk = gateway.recv(fd, 1024)
                    if not chunk:
                        break
                    raw += chunk
                status, body, _ = split_http_response(raw)
                assert status == 200
                gateway.close(fd)
            completed.append(worker_id)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append((worker_id, exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(completed) == 8
    assert not gateway._connections  # every fd was closed exactly once
