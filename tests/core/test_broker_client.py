"""The client-side broker: attestation policy and the encrypted tunnel."""

import pytest

from repro.core.broker import Broker
from repro.core.client import XSearchClient
from repro.core.proxy import XSearchEnclaveCode, XSearchProxyHost
from repro.errors import AttestationError, ProtocolError
from repro.search.tracking import TrackingSearchEngine
from repro.sgx.attestation import AttestationService, QuotingEnclave
from repro.sgx.measurement import measure_bytes


@pytest.fixture(scope="module")
def stack(small_engine):
    service = AttestationService(1024)
    quoting_enclave = QuotingEnclave(1024)
    service.provision_platform(quoting_enclave)
    proxy = XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=2,
        history_capacity=1000,
        quoting_enclave=quoting_enclave,
        attestation_service=service,
        rng_seed=3,
    )
    return service, proxy


def make_broker(stack, session_id, expected=None):
    service, proxy = stack
    return Broker(
        proxy,
        service_public_key=service.public_key,
        expected_measurement=expected or proxy.measurement,
        session_id=session_id,
    )


def test_connect_and_search(stack):
    broker = make_broker(stack, "b1")
    broker.connect()
    assert broker.attested
    results = broker.search("cheap hotel rome", 10)
    assert results
    assert all(r.title for r in results)


def test_search_before_connect_rejected(stack):
    broker = make_broker(stack, "b2")
    with pytest.raises(AttestationError):
        broker.search("q")


def test_double_connect_rejected(stack):
    broker = make_broker(stack, "b3")
    broker.connect()
    with pytest.raises(ProtocolError):
        broker.connect()


def test_wrong_expected_measurement_refuses_connection(stack):
    broker = make_broker(
        stack, "b4", expected=measure_bytes(b"the published good proxy")
    )
    with pytest.raises(AttestationError):
        broker.connect()
    assert not broker.attested
    assert not broker.is_connected


def test_ingest_feeds_history(stack):
    broker = make_broker(stack, "b5")
    broker.connect()
    assert broker.ingest(["alpha beta", "gamma delta"]) == 2


def test_client_wrapper(stack):
    broker = make_broker(stack, "b6")
    client = XSearchClient(broker, user_id="alice")
    results = client.search("  diabetes symptoms  ")
    assert results
    assert client.queries_sent == 1
    # Auto-connected on first use.
    assert broker.is_connected


def test_client_rejects_empty_query(stack):
    broker = make_broker(stack, "b7")
    client = XSearchClient(broker)
    with pytest.raises(ProtocolError):
        client.search("   ")


def test_sessions_are_isolated(stack):
    broker_a = make_broker(stack, "iso-a")
    broker_b = make_broker(stack, "iso-b")
    broker_a.connect()
    broker_b.connect()
    assert broker_a.search("hotel rome", 5)
    assert broker_b.search("nfl playoffs", 5)
