"""Segmented EPC metering of the query history."""

import random

from repro.core.history import SEGMENT_ENTRIES, QueryHistory
from repro.sgx.epc import EnclavePageCache
from repro.sgx.runtime import EnclaveMemory


def test_segments_created_every_segment_entries():
    epc = EnclavePageCache()
    memory = EnclaveMemory(epc)
    history = QueryHistory(10 * SEGMENT_ENTRIES, enclave_memory=memory)
    history.extend(f"q{i}" for i in range(2 * SEGMENT_ENTRIES + 5))
    assert "xsearch.query_history.seg0" in memory
    assert "xsearch.query_history.seg1" in memory
    assert "xsearch.query_history.seg2" in memory
    assert "xsearch.query_history.seg3" not in memory


def test_segment_freed_when_fully_evicted():
    epc = EnclavePageCache()
    memory = EnclaveMemory(epc)
    history = QueryHistory(SEGMENT_ENTRIES, enclave_memory=memory)
    # Fill two segments' worth; the first segment is then fully evicted.
    history.extend(f"q{i}" for i in range(2 * SEGMENT_ENTRIES))
    assert "xsearch.query_history.seg0" not in memory
    assert "xsearch.query_history.seg1" in memory


def test_total_bytes_match_epc_occupancy():
    epc = EnclavePageCache()
    history = QueryHistory(100_000, enclave_memory=EnclaveMemory(epc))
    history.extend(f"query number {i}" for i in range(3000))
    assert epc.occupancy_bytes == history.byte_size


def test_namespaces_keep_two_histories_apart():
    epc = EnclavePageCache()
    memory = EnclaveMemory(epc)
    a = QueryHistory(1000, enclave_memory=memory, memory_namespace="a")
    b = QueryHistory(1000, enclave_memory=memory, memory_namespace="b")
    a.extend(f"qa{i}" for i in range(10))
    b.extend(f"qb{i}" for i in range(20))
    assert epc.occupancy_bytes == a.byte_size + b.byte_size


def test_sampling_touches_segments_without_memory_attached():
    # No enclave memory: sampling still works, no metering side effects.
    history = QueryHistory(100)
    history.extend(f"q{i}" for i in range(50))
    assert len(history.sample(5, random.Random(1))) == 5


def test_sampling_faults_cold_segments():
    """With the EPC shrunk below the table size, sampling pays paging."""
    small_epc = EnclavePageCache(usable_bytes=64 * 4096)  # 256 KiB
    history = QueryHistory(
        100_000, enclave_memory=EnclaveMemory(small_epc)
    )
    history.extend(f"padded query {i} {'x' * 40}" for i in range(6000))
    assert small_epc.exceeds_epc()
    before = small_epc.stats.swap_events
    rng = random.Random(3)
    for _ in range(50):
        history.sample(3, rng)
    assert small_epc.stats.swap_events > before
