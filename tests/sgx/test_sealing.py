"""Sealed storage: same-enclave-only unsealing."""

import pytest

from repro.errors import SealingError
from repro.sgx.measurement import measure_bytes
from repro.sgx.sealing import SealingPlatform

M1 = measure_bytes(b"enclave-one")
M2 = measure_bytes(b"enclave-two")


def test_seal_unseal_roundtrip():
    platform = SealingPlatform()
    sealed = platform.seal(M1, b"history snapshot")
    assert platform.unseal(M1, sealed) == b"history snapshot"


def test_unsealing_under_other_measurement_fails():
    platform = SealingPlatform()
    sealed = platform.seal(M1, b"secret")
    with pytest.raises(SealingError):
        platform.unseal(M2, sealed)


def test_unsealing_on_other_platform_fails():
    sealed = SealingPlatform().seal(M1, b"secret")
    with pytest.raises(SealingError):
        SealingPlatform().unseal(M1, sealed)


def test_tampered_blob_fails():
    platform = SealingPlatform()
    sealed = bytearray(platform.seal(M1, b"secret"))
    sealed[-1] ^= 0x01
    with pytest.raises(SealingError):
        platform.unseal(M1, bytes(sealed))


def test_truncated_blob_fails():
    platform = SealingPlatform()
    with pytest.raises(SealingError):
        platform.unseal(M1, b"\x00" * 4)


def test_aad_binding():
    platform = SealingPlatform()
    sealed = platform.seal(M1, b"secret", aad=b"v1")
    assert platform.unseal(M1, sealed, aad=b"v1") == b"secret"
    with pytest.raises(SealingError):
        platform.unseal(M1, sealed, aad=b"v2")


def test_nonces_are_fresh():
    platform = SealingPlatform()
    assert platform.seal(M1, b"x") != platform.seal(M1, b"x")


def test_explicit_root_key_is_deterministic_platform():
    a = SealingPlatform(root_key=b"\x01" * 32)
    b = SealingPlatform(root_key=b"\x01" * 32)
    assert b.unseal(M1, a.seal(M1, b"shared fuse key")) == b"shared fuse key"


def test_root_key_length_enforced():
    with pytest.raises(SealingError):
        SealingPlatform(root_key=b"short")
