"""Enclave runtime: lifecycle, ecall/ocall dispatch, isolation, costs."""

import pytest

from repro.errors import EnclaveError
from repro.sgx.epc import EnclavePageCache
from repro.sgx.runtime import (
    CostModel,
    Enclave,
    EnclaveMemory,
    OcallTable,
    ecall,
    estimate_size,
)


class CounterEnclave:
    """A minimal enclave used throughout these tests."""

    def __init__(self, memory, ocalls, start: int = 0):
        self.memory = memory
        self.ocalls = ocalls
        self.memory.store("count", start, nbytes=64)

    @ecall
    def increment(self, amount: int = 1) -> int:
        value = self.memory.load("count") + amount
        self.memory.store("count", value, nbytes=64)
        return value

    @ecall
    def echo_out(self, data: bytes) -> bytes:
        return self.ocalls.loopback(data)

    def internal_secret(self):  # deliberately NOT an ecall
        return "secret"


def make_enclave(**kwargs):
    table = OcallTable()
    table.register("loopback", lambda data: b"host:" + data)
    enclave = Enclave(CounterEnclave, ocalls=table, **kwargs)
    enclave.initialize(5)
    return enclave


def test_lifecycle_and_dispatch():
    enclave = make_enclave()
    assert enclave.is_initialized
    assert enclave.call("increment") == 6
    assert enclave.call("increment", 10) == 16


def test_ecall_before_init_rejected():
    enclave = Enclave(CounterEnclave)
    with pytest.raises(EnclaveError):
        enclave.call("increment")


def test_double_init_rejected():
    enclave = make_enclave()
    with pytest.raises(EnclaveError):
        enclave.initialize(1)


def test_destroyed_enclave_unusable():
    enclave = make_enclave()
    enclave.destroy()
    assert not enclave.is_initialized
    with pytest.raises(EnclaveError):
        enclave.call("increment")
    with pytest.raises(EnclaveError):
        enclave.initialize(0)


def test_non_exported_method_not_callable():
    enclave = make_enclave()
    with pytest.raises(EnclaveError):
        enclave.call("internal_secret")


def test_enclave_without_ecalls_rejected():
    class NoEntryPoints:
        def __init__(self, memory, ocalls):
            pass

    with pytest.raises(EnclaveError):
        Enclave(NoEntryPoints)


def test_ocall_dispatch_and_undefined_ocall():
    enclave = make_enclave()
    assert enclave.call("echo_out", b"ping") == b"host:ping"

    bare = Enclave(CounterEnclave)  # empty ocall table
    bare.initialize(0)
    with pytest.raises(EnclaveError):
        bare.call("echo_out", b"ping")


def test_ocall_registration_requires_callable():
    table = OcallTable()
    with pytest.raises(EnclaveError):
        table.register("bad", 42)


def test_transition_costs_charged():
    model = CostModel(ecall_cycles=1000, ocall_cycles=500)
    table = OcallTable()
    table.register("loopback", lambda data: data)
    enclave = Enclave(CounterEnclave, ocalls=table, cost_model=model)
    enclave.initialize(0)
    enclave.call("echo_out", b"x")  # 1 ecall + 1 ocall
    assert enclave.counter.ecalls == 1
    assert enclave.counter.ocalls == 1
    assert enclave.counter.cycles == 1500
    assert enclave.transition_seconds() == pytest.approx(1500 / model.clock_hz)


def test_boundary_log_captures_payloads():
    enclave = make_enclave()
    enclave.call("echo_out", b"visible-bytes")
    directions = [(r.direction, r.name) for r in enclave.boundary_log]
    assert ("ecall", "echo_out") in directions
    assert ("ocall", "loopback") in directions
    ocall_payloads = [r.payload for r in enclave.boundary_log
                      if r.direction == "ocall"]
    assert b"visible-bytes" in ocall_payloads


def test_boundary_log_captures_bytes_nested_in_sequences():
    """Batched ecalls cross the boundary as lists of (id, record) pairs;
    the record ciphertext must still be captured for the security tests."""
    enclave = make_enclave()
    enclave.call("increment", 1)  # no bytes
    enclave._on_boundary("ecall", "request_batch",
                         ([("s1", b"rec-one"), ("s2", b"rec-two")],))
    payloads = [r.payload for r in enclave.boundary_log
                if r.name == "request_batch"]
    assert payloads == [b"rec-onerec-two"]


# ---------------------------------------------------------------------------
# Per-name transition counts and the snapshot API
# ---------------------------------------------------------------------------

def test_counter_tracks_per_name_counts():
    enclave = make_enclave()
    enclave.call("echo_out", b"a")
    enclave.call("echo_out", b"b")
    enclave.call("increment", 1)
    assert enclave.counter.ecall_counts == {"echo_out": 2, "increment": 1}
    assert enclave.counter.ocall_counts == {"loopback": 2}


def test_boundary_snapshot_subtracts_to_deltas():
    enclave = make_enclave()
    enclave.call("echo_out", b"warmup")
    before = enclave.boundary_snapshot()
    enclave.call("echo_out", b"measured")
    enclave.call("increment", 2)
    delta = enclave.boundary_snapshot() - before
    assert delta.ecalls == 2
    assert delta.ocalls == 1
    assert delta.ecall_counts == {"echo_out": 1, "increment": 1}
    assert delta.ocall_counts == {"loopback": 1}
    assert delta.transitions == 3
    assert delta.cycles == (
        2 * enclave.cost_model.ecall_cycles + enclave.cost_model.ocall_cycles
    )


def test_snapshot_is_frozen_in_time():
    enclave = make_enclave()
    snap = enclave.boundary_snapshot()
    enclave.call("increment", 1)
    assert snap.ecalls == 0
    assert snap.ecall_counts == {}
    later = enclave.boundary_snapshot()
    assert later.ecalls == 1
    # Zero-delta names are omitted from subtracted snapshots.
    assert (later - later).ecall_counts == {}


def test_measurement_includes_config():
    a = make_enclave(config=b"k=3")
    b = make_enclave(config=b"k=4")
    assert a.measurement != b.measurement


# ---------------------------------------------------------------------------
# EnclaveMemory
# ---------------------------------------------------------------------------

def test_memory_store_load_delete():
    memory = EnclaveMemory(EnclavePageCache())
    memory.store("key", [1, 2, 3], nbytes=100)
    assert memory.load("key") == [1, 2, 3]
    assert "key" in memory
    assert memory.size_of("key") == 100
    memory.delete("key")
    assert "key" not in memory
    with pytest.raises(EnclaveError):
        memory.load("key")
    with pytest.raises(EnclaveError):
        memory.delete("key")


def test_memory_restore_resizes():
    epc = EnclavePageCache()
    memory = EnclaveMemory(epc)
    memory.store("k", "a", nbytes=10)
    memory.store("k", "bb", nbytes=2000)
    assert epc.occupancy_bytes == 2000


def test_memory_default_size_estimation():
    memory = EnclaveMemory(EnclavePageCache())
    memory.store("auto", {"a": [1, 2, 3], "b": "text"})
    assert memory.size_of("auto") > 0


def test_estimate_size_handles_cycles():
    cyclic = []
    cyclic.append(cyclic)
    assert estimate_size(cyclic) > 0


def test_estimate_size_grows_with_content():
    assert estimate_size(["x" * 1000]) > estimate_size(["x"])
