"""Enclave measurement: stability and sensitivity."""

import pytest

from repro.errors import EnclaveError
from repro.sgx.measurement import Measurement, measure_bytes, measure_code


class EnclaveA:
    def __init__(self, memory, ocalls):
        pass

    def work(self):
        return 1


class EnclaveB:
    def __init__(self, memory, ocalls):
        pass

    def work(self):
        return 2


def test_measurement_is_stable():
    assert measure_code(EnclaveA) == measure_code(EnclaveA)


def test_different_code_different_measurement():
    assert measure_code(EnclaveA) != measure_code(EnclaveB)


def test_config_is_part_of_measurement():
    assert measure_code(EnclaveA, b"k=3") != measure_code(EnclaveA, b"k=5")


def test_measure_bytes():
    a = measure_bytes(b"pages")
    b = measure_bytes(b"pages")
    c = measure_bytes(b"other")
    assert a == b != c


def test_measurement_digest_length_enforced():
    with pytest.raises(EnclaveError):
        Measurement(b"too short")


def test_hex_rendering():
    m = measure_bytes(b"x")
    assert len(m.hex()) == 64
    assert m.hex() in repr(m.hex())


def test_source_unavailable_fallback_on_builtin_like_class():
    # Classes without retrievable source (e.g. defined via exec) still get a
    # measurement derived from their bytecode.
    namespace = {}
    exec(
        "class Dynamic:\n"
        "    def __init__(self, memory, ocalls):\n"
        "        pass\n"
        "    def work(self):\n"
        "        return 42\n",
        namespace,
    )
    dynamic = namespace["Dynamic"]
    assert measure_code(dynamic) == measure_code(dynamic)
    assert measure_code(dynamic) != measure_code(EnclaveA)
