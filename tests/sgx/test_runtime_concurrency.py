"""CycleCounter and boundary snapshots under concurrent ecalls.

The request scheduler drives the enclave from several worker threads
at once, so `CycleCounter.record` and `Enclave.boundary_snapshot()`
must neither lose increments nor tear: a snapshot observes each
crossing entirely or not at all, and the per-name attributions always
sum to the aggregate totals.
"""

from __future__ import annotations

import threading

from repro.sgx.runtime import CycleCounter

THREADS = 8
ROUNDS = 400


def test_concurrent_record_loses_nothing():
    counter = CycleCounter()
    barrier = threading.Barrier(THREADS)

    def hammer(index):
        barrier.wait()
        direction = "ecall" if index % 2 == 0 else "ocall"
        for round_index in range(ROUNDS):
            counter.record(direction, f"op_{index}", 3)
            counter.charge(2)

    threads = [threading.Thread(target=hammer, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = THREADS * ROUNDS
    assert counter.ecalls + counter.ocalls == total
    assert counter.cycles == total * 5
    assert sum(counter.ecall_counts.values()) == counter.ecalls
    assert sum(counter.ocall_counts.values()) == counter.ocalls
    assert all(count == ROUNDS
               for count in counter.ecall_counts.values())


def test_snapshots_never_tear_under_concurrent_recording():
    counter = CycleCounter()
    stop = threading.Event()
    violations = []

    def writer():
        while not stop.is_set():
            counter.record("ecall", "request", 7)

    def reader():
        while not stop.is_set():
            snapshot = counter.snapshot()
            # Atomicity: the named attribution must exactly match the
            # aggregate ecall count *within one snapshot* — any drift
            # means the snapshot interleaved with a recording.
            named = sum(snapshot.ecall_counts.values())
            if named != snapshot.ecalls:
                violations.append((named, snapshot.ecalls))
            if snapshot.cycles != snapshot.ecalls * 7:
                violations.append(("cycles", snapshot.cycles,
                                   snapshot.ecalls))

    writers = [threading.Thread(target=writer) for _ in range(4)]
    readers = [threading.Thread(target=reader) for _ in range(2)]
    for thread in writers + readers:
        thread.start()
    timer = threading.Timer(0.5, stop.set)
    timer.start()
    for thread in writers + readers:
        thread.join()
    timer.cancel()
    assert not violations
