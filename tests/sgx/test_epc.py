"""EPC model: page accounting, eviction, paging costs."""

import pytest

from repro.errors import EnclaveMemoryError
from repro.sgx.epc import (
    PAGE_SIZE,
    PAGE_SWAP_CYCLES,
    USABLE_EPC_BYTES,
    EnclavePageCache,
    pages_for,
)


def test_pages_for():
    assert pages_for(0) == 0
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE) == 1
    assert pages_for(PAGE_SIZE + 1) == 2
    with pytest.raises(EnclaveMemoryError):
        pages_for(-1)


def test_usable_epc_is_the_papers_90mb():
    assert USABLE_EPC_BYTES == 90 * 1024 * 1024


def test_allocate_accounts_bytes_and_pages():
    epc = EnclavePageCache()
    epc.allocate(10_000)
    assert epc.occupancy_bytes == 10_000
    assert epc.stats.resident_pages == pages_for(10_000)


def test_free_releases():
    epc = EnclavePageCache()
    handle = epc.allocate(5_000)
    epc.free(handle)
    assert epc.occupancy_bytes == 0
    assert epc.stats.resident_pages == 0


def test_free_unknown_handle_rejected():
    epc = EnclavePageCache()
    with pytest.raises(EnclaveMemoryError):
        epc.free(77)


def test_resize_tracks_delta():
    epc = EnclavePageCache()
    handle = epc.allocate(1_000)
    epc.resize(handle, 100_000)
    assert epc.occupancy_bytes == 100_000
    epc.resize(handle, 50)
    assert epc.occupancy_bytes == 50


def test_peak_tracking():
    epc = EnclavePageCache()
    handle = epc.allocate(80_000)
    epc.free(handle)
    assert epc.stats.peak_allocated_bytes == 80_000


def test_overflow_triggers_swapping_not_failure():
    epc = EnclavePageCache(usable_bytes=10 * PAGE_SIZE)
    handles = [epc.allocate(4 * PAGE_SIZE) for _ in range(3)]
    # 12 pages demanded of a 10-page EPC: swapping must have happened.
    assert epc.stats.swapped_pages > 0
    assert epc.stats.resident_pages <= 10
    assert epc.stats.swap_cycles == epc.stats.swapped_pages * PAGE_SWAP_CYCLES
    assert len(handles) == 3


def test_touch_faults_swapped_allocation_back():
    epc = EnclavePageCache(usable_bytes=4 * PAGE_SIZE)
    first = epc.allocate(3 * PAGE_SIZE)
    epc.allocate(3 * PAGE_SIZE)  # evicts `first` (FIFO)
    cost = epc.touch(first)
    assert cost == 3 * PAGE_SWAP_CYCLES
    assert epc.touch(first) == 0  # now resident


def test_touch_unknown_handle_rejected():
    epc = EnclavePageCache()
    with pytest.raises(EnclaveMemoryError):
        epc.touch(123)


def test_single_allocation_larger_than_epc_rejected():
    epc = EnclavePageCache(usable_bytes=4 * PAGE_SIZE)
    with pytest.raises(EnclaveMemoryError):
        epc.allocate(5 * PAGE_SIZE)


def test_exceeds_epc_flag():
    epc = EnclavePageCache(usable_bytes=4 * PAGE_SIZE)
    epc.allocate(3 * PAGE_SIZE)
    assert not epc.exceeds_epc()
    epc.allocate(3 * PAGE_SIZE)
    assert epc.exceeds_epc()


def test_version_counters_bump_on_swap():
    epc = EnclavePageCache(usable_bytes=2 * PAGE_SIZE)
    first = epc.allocate(2 * PAGE_SIZE)
    epc.allocate(PAGE_SIZE)
    allocation = epc._allocations[first]
    assert allocation.version == 1  # swapped out once
    epc.touch(first)
    assert allocation.version == 2  # faulted back in


def test_zero_size_epc_rejected():
    with pytest.raises(EnclaveMemoryError):
        EnclavePageCache(usable_bytes=0)
