"""Remote attestation: the full quote → verdict → client policy chain."""

import pytest

from repro.errors import AttestationError
from repro.sgx.attestation import (
    AttestationService,
    Quote,
    QuotingEnclave,
    RemoteVerifier,
    report_data_for_key,
)
from repro.sgx.measurement import measure_bytes

GOOD = measure_bytes(b"published xsearch proxy")
EVIL = measure_bytes(b"modified proxy")


@pytest.fixture(scope="module")
def infra():
    service = AttestationService(1024)
    quoting_enclave = QuotingEnclave(1024)
    service.provision_platform(quoting_enclave)
    return service, quoting_enclave


def test_happy_path(infra):
    service, qe = infra
    report_data = report_data_for_key(b"channel-public")
    verdict = service.verify_quote(qe.quote(GOOD, report_data))
    assert verdict.is_ok
    RemoteVerifier(service.public_key, GOOD).verify(verdict, report_data)


def test_unknown_platform_rejected(infra):
    service, _ = infra
    rogue = QuotingEnclave(1024)  # never provisioned
    verdict = service.verify_quote(
        rogue.quote(GOOD, report_data_for_key(b"k"))
    )
    assert verdict.status == "UNKNOWN_PLATFORM"
    with pytest.raises(AttestationError):
        RemoteVerifier(service.public_key, GOOD).verify(verdict)


def test_tampered_quote_rejected(infra):
    service, qe = infra
    quote = qe.quote(GOOD, report_data_for_key(b"k"))
    forged = Quote(
        platform_id=quote.platform_id,
        measurement=EVIL,  # swap the measurement, keep the signature
        report_data=quote.report_data,
        signature=quote.signature,
    )
    verdict = service.verify_quote(forged)
    assert verdict.status == "INVALID_SIGNATURE"


def test_wrong_measurement_rejected_by_client(infra):
    service, qe = infra
    verdict = service.verify_quote(qe.quote(EVIL, report_data_for_key(b"k")))
    assert verdict.is_ok  # the service only checks platform authenticity...
    with pytest.raises(AttestationError):
        # ...the *client* enforces the expected measurement.
        RemoteVerifier(service.public_key, GOOD).verify(verdict)


def test_report_data_binding_enforced(infra):
    service, qe = infra
    verdict = service.verify_quote(
        qe.quote(GOOD, report_data_for_key(b"enclave-key"))
    )
    verifier = RemoteVerifier(service.public_key, GOOD)
    with pytest.raises(AttestationError):
        verifier.verify(verdict, report_data_for_key(b"attacker-key"))


def test_forged_verdict_signature_rejected(infra):
    service, qe = infra
    verdict = service.verify_quote(qe.quote(GOOD, report_data_for_key(b"k")))
    other_service = AttestationService(1024)
    with pytest.raises(AttestationError):
        RemoteVerifier(other_service.public_key, GOOD).verify(verdict)


def test_report_data_size_enforced(infra):
    _, qe = infra
    with pytest.raises(AttestationError):
        qe.quote(GOOD, b"short")


def test_report_data_for_key_is_64_bytes():
    assert len(report_data_for_key(b"anything")) == 64
