"""TCS modelling: bounded thread concurrency inside an enclave."""

import threading
import time

import pytest

from repro.errors import EnclaveError
from repro.sgx.runtime import Enclave, OcallTable, ecall


class SlowEnclave:
    """An enclave whose ecall parks long enough to observe concurrency."""

    def __init__(self, memory, ocalls):
        self.memory = memory
        self.ocalls = ocalls

    @ecall
    def work(self, seconds: float) -> int:
        time.sleep(seconds)
        return 1


def make(tcs_count):
    enclave = Enclave(SlowEnclave, tcs_count=tcs_count)
    enclave.initialize()
    return enclave


def run_threads(enclave, n_threads, seconds=0.05):
    threads = [
        threading.Thread(target=enclave.call, args=("work", seconds))
        for _ in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_concurrency_never_exceeds_tcs():
    enclave = make(tcs_count=2)
    run_threads(enclave, 6)
    assert enclave.max_threads_inside <= 2
    assert enclave.counter.ecalls == 6  # everyone eventually got in


def test_parallelism_up_to_tcs():
    enclave = make(tcs_count=4)
    run_threads(enclave, 4)
    assert enclave.max_threads_inside >= 2  # genuine overlap happened


def test_single_tcs_serialises():
    enclave = make(tcs_count=1)
    run_threads(enclave, 3, seconds=0.02)
    assert enclave.max_threads_inside == 1


def test_excess_callers_block_not_fail():
    enclave = make(tcs_count=1)
    started = time.time()
    run_threads(enclave, 3, seconds=0.05)
    # Three serialized 50 ms calls take at least ~150 ms.
    assert time.time() - started >= 0.14


def test_tcs_count_validated():
    with pytest.raises(EnclaveError):
        Enclave(SlowEnclave, tcs_count=0)


def test_default_tcs_matches_service_model_workers():
    from repro.experiments.service_models import XSEARCH_WORKERS
    from repro.sgx.runtime import DEFAULT_TCS_COUNT

    assert DEFAULT_TCS_COUNT == XSEARCH_WORKERS
