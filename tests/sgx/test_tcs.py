"""TCS modelling: bounded thread concurrency inside an enclave.

Concurrency is observed with events and barriers, never wall-clock
sleeps: an ecall parks on a gate the test controls, so "N threads were
inside simultaneously" is a synchronisation fact, not a timing guess —
and the suite stays deterministic under the tests-scope xlint rule.
"""

import threading

import pytest

from repro.errors import EnclaveError
from repro.sgx.runtime import Enclave, OcallTable, ecall


class GateEnclave:
    """An enclave whose ecalls park on test-controlled gates."""

    def __init__(self, memory, ocalls):
        self.memory = memory
        self.ocalls = ocalls
        self.lock = threading.Lock()
        self.inside = 0
        self.expected = 1
        self.full = threading.Event()     # `expected` callers are parked
        self.release = threading.Event()  # lets parked callers leave
        self.barrier = None

    @ecall
    def parked(self) -> int:
        with self.lock:
            self.inside += 1
            if self.inside >= self.expected:
                self.full.set()
        self.release.wait()
        with self.lock:
            self.inside -= 1
        return 1

    @ecall
    def rendezvous(self) -> int:
        # Only passes once every expected caller is inside at once.
        self.barrier.wait(timeout=30)
        return 1


def make(tcs_count):
    enclave = Enclave(GateEnclave, tcs_count=tcs_count)
    enclave.initialize()
    return enclave, enclave._instance


def run_threads(enclave, n_threads, method="parked"):
    threads = [
        threading.Thread(target=enclave.call, args=(method,))
        for _ in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    return threads


def join_all(threads):
    for thread in threads:
        thread.join(timeout=30)
    assert all(not thread.is_alive() for thread in threads)


def test_concurrency_never_exceeds_tcs():
    enclave, gate = make(tcs_count=2)
    gate.expected = 2
    threads = run_threads(enclave, 6)
    # Both TCS slots fill while four callers queue at the boundary...
    assert gate.full.wait(timeout=30)
    gate.release.set()
    join_all(threads)
    assert enclave.max_threads_inside <= 2
    assert enclave.counter.ecalls == 6  # everyone eventually got in


def test_parallelism_up_to_tcs():
    enclave, gate = make(tcs_count=4)
    gate.barrier = threading.Barrier(4)
    # The barrier only opens when all four are inside simultaneously,
    # so completion *proves* genuine overlap up to the TCS count.
    join_all(run_threads(enclave, 4, method="rendezvous"))
    assert enclave.max_threads_inside == 4


def test_single_tcs_serialises():
    enclave, gate = make(tcs_count=1)
    gate.release.set()  # no parking: pure serialisation check
    join_all(run_threads(enclave, 3))
    assert enclave.max_threads_inside == 1
    # Excess callers blocked at the boundary and then got in — a full
    # TCS table queues, it does not fail.
    assert enclave.counter.ecalls == 3


def test_tcs_count_validated():
    with pytest.raises(EnclaveError):
        Enclave(GateEnclave, tcs_count=0)


def test_default_tcs_matches_service_model_workers():
    from repro.experiments.service_models import XSEARCH_WORKERS
    from repro.sgx.runtime import DEFAULT_TCS_COUNT

    assert DEFAULT_TCS_COUNT == XSEARCH_WORKERS
