"""Failure injection: Byzantine hosts, tampering, broken infrastructure.

The adversary model (§3) lets the proxy *host* behave arbitrarily.  These
tests play that host: every attack must fail closed — detected by the
cryptography or the attestation policy — never by returning wrong data to
the user silently.
"""

import pytest

from repro.core.broker import Broker
from repro.core.protocol import SearchRequest
from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.errors import (
    AttestationError,
    AuthenticationError,
    EnclaveError,
    NetworkError,
)
from repro.search.tracking import TrackingSearchEngine
from repro.sgx.attestation import AttestationService, QuotingEnclave


@pytest.fixture()
def stack(small_engine):
    service = AttestationService(1024)
    quoting_enclave = QuotingEnclave(1024)
    service.provision_platform(quoting_enclave)
    proxy = XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=2,
        history_capacity=500,
        quoting_enclave=quoting_enclave,
        attestation_service=service,
        rng_seed=1,
    )
    return service, proxy


def connected_broker(stack, session_id="victim"):
    service, proxy = stack
    broker = Broker(
        proxy,
        service_public_key=service.public_key,
        expected_measurement=proxy.measurement,
        session_id=session_id,
    )
    broker.connect()
    return broker, proxy


def test_host_tampering_with_request_detected(stack):
    """A Byzantine host flips bits in the client's record: the enclave's
    AEAD rejects it instead of serving a corrupted query."""
    _, proxy = stack
    initiator = HandshakeInitiator()
    proxy.begin_session("tamper", initiator.hello())
    endpoint = initiator.finish(proxy.channel_public())
    record = bytearray(endpoint.encrypt(SearchRequest("secret", 5).encode()))
    record[3] ^= 0x40
    with pytest.raises(AuthenticationError):
        proxy.request("tamper", bytes(record))


def test_host_replaying_a_request_detected(stack):
    _, proxy = stack
    initiator = HandshakeInitiator()
    proxy.begin_session("replay", initiator.hello())
    endpoint = initiator.finish(proxy.channel_public())
    record = endpoint.encrypt(SearchRequest("hotel rome", 5).encode())
    proxy.request("replay", record)
    with pytest.raises(AuthenticationError):
        proxy.request("replay", record)


def test_host_tampering_with_response_detected(stack):
    """The host corrupts the enclave's encrypted response in flight."""

    broker, proxy = connected_broker(stack)
    original_request = proxy.request

    def corrupting_request(session_id, record):
        reply = bytearray(original_request(session_id, record))
        reply[-1] ^= 0x01
        return bytes(reply)

    proxy.request = corrupting_request
    try:
        with pytest.raises(AuthenticationError):
            broker.search("hotel rome", 5)
    finally:
        proxy.request = original_request


def test_host_cannot_impersonate_enclave_key(stack):
    """The host substitutes its own channel key: report-data binding in the
    quote exposes the swap."""
    service, proxy = stack
    from repro.crypto.dh import DhKeyPair

    host_keypair = DhKeyPair()
    original = proxy.channel_public
    proxy.channel_public = lambda: host_keypair.public_bytes()
    try:
        broker = Broker(
            proxy,
            service_public_key=service.public_key,
            expected_measurement=proxy.measurement,
            session_id="mitm",
        )
        with pytest.raises(AttestationError):
            broker.connect()
    finally:
        proxy.channel_public = original


def test_modified_enclave_code_fails_attestation(small_engine, stack):
    """Deploying a (maliciously) different enclave class yields a different
    measurement; clients expecting the published one refuse to connect."""
    service, good_proxy = stack

    class EvilEnclave:
        def __init__(self, memory, ocalls):
            pass

        from repro.sgx.runtime import ecall

        @ecall
        def init(self, **kwargs):
            pass

        @ecall
        def channel_public(self) -> bytes:
            from repro.crypto.channel import HandshakeResponder

            self._responder = HandshakeResponder()
            return self._responder.public_bytes()

        @ecall
        def accept_session(self, session_id, hello):
            pass

        @ecall
        def request(self, session_id, record):
            return b"stolen"

    from repro.sgx.runtime import Enclave

    evil = Enclave(EvilEnclave)
    assert evil.measurement != good_proxy.measurement


def test_engine_outage_surfaces_as_network_error(stack):
    broker, proxy = connected_broker(stack, "outage")

    def refuse(host, port):
        raise NetworkError("connection refused")

    proxy.gateway.sock_connect, original = refuse, proxy.gateway.sock_connect
    # Re-register the ocall to point at the refusing implementation.
    table = proxy.gateway.ocall_table()
    with pytest.raises(NetworkError):
        proxy.gateway.sock_connect("engine.example.com", 80)
    proxy.gateway.sock_connect = original


def test_session_confusion_rejected(stack):
    """Records from one session cannot be spliced into another."""
    _, proxy = stack
    initiator_a = HandshakeInitiator()
    proxy.begin_session("a", initiator_a.hello())
    endpoint_a = initiator_a.finish(proxy.channel_public())

    initiator_b = HandshakeInitiator()
    proxy.begin_session("b", initiator_b.hello())

    record = endpoint_a.encrypt(SearchRequest("for session a", 5).encode())
    with pytest.raises(AuthenticationError):
        proxy.request("b", record)


def test_unprovisioned_platform_rejected(small_engine):
    service = AttestationService(1024)
    rogue_quoting_enclave = QuotingEnclave(1024)  # not provisioned
    proxy = XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=1,
        quoting_enclave=rogue_quoting_enclave,
        attestation_service=service,
    )
    broker = Broker(
        proxy,
        service_public_key=service.public_key,
        expected_measurement=proxy.measurement,
    )
    with pytest.raises(AttestationError):
        broker.connect()
