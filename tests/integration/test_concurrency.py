"""The multi-threaded proxy of §4.1: 'the query table is kept in memory
and shared among all threads'.

Several attested client sessions hammer one proxy from concurrent threads;
everything must stay consistent — no lost responses, no cross-session
plaintext, bounded history.
"""

import threading

import pytest

from repro.core.broker import Broker
from repro.core.proxy import XSearchProxyHost
from repro.search.tracking import TrackingSearchEngine
from repro.sgx.attestation import AttestationService, QuotingEnclave

N_CLIENTS = 6
QUERIES_PER_CLIENT = 15


@pytest.fixture()
def stack(small_engine):
    service = AttestationService(1024)
    quoting_enclave = QuotingEnclave(1024)
    service.provision_platform(quoting_enclave)
    proxy = XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=2,
        history_capacity=200,
        quoting_enclave=quoting_enclave,
        attestation_service=service,
        rng_seed=2,
    )
    return service, proxy


def test_concurrent_sessions(stack):
    service, proxy = stack
    errors = []
    results_by_client = {}

    def client_worker(index):
        try:
            broker = Broker(
                proxy,
                service_public_key=service.public_key,
                expected_measurement=proxy.measurement,
                session_id=f"client-{index}",
            )
            broker.connect()
            collected = []
            for i in range(QUERIES_PER_CLIENT):
                results = broker.search(f"hotel rome probe {index} {i}", 5)
                collected.append(results)
            results_by_client[index] = collected
        except Exception as exc:  # pragma: no cover - must not happen
            errors.append((index, exc))

    threads = [
        threading.Thread(target=client_worker, args=(i,))
        for i in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    # Every client got a response for every query.
    assert len(results_by_client) == N_CLIENTS
    for collected in results_by_client.values():
        assert len(collected) == QUERIES_PER_CLIENT

    tracking = proxy.gateway._engine
    # Exactly one engine request per search, all from the proxy identity.
    assert len(tracking.observations) == N_CLIENTS * QUERIES_PER_CLIENT
    assert tracking.observed_sources() == ["xsearch-proxy.cloud"]

    # The shared history stayed within its bound.
    history = proxy.enclave._instance._history
    assert len(history) <= 200


def test_concurrent_sessions_see_each_others_fakes(stack):
    """The privacy payoff of sharing the table: queries of one session
    appear as fakes in another's obfuscated queries."""
    service, proxy = stack
    markers = {f"sharedmarker{i}zz" for i in range(N_CLIENTS)}

    def client_worker(index):
        broker = Broker(
            proxy,
            service_public_key=service.public_key,
            expected_measurement=proxy.measurement,
            session_id=f"m-{index}",
        )
        broker.connect()
        broker.search(f"sharedmarker{index}zz", 5)
        for i in range(10):
            broker.search(f"followup {index} {i}", 5)

    threads = [
        threading.Thread(target=client_worker, args=(i,))
        for i in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    tracking = proxy.gateway._engine
    cross_session = 0
    for observation in tracking.observations:
        subqueries = observation.text.split(" OR ")
        present = markers & set(subqueries)
        # A marker appearing in an observation whose real query belongs to
        # a different session proves table sharing.
        for marker in present:
            if not any(marker in s and "followup" not in s
                       for s in subqueries[:1]):
                pass
        if present and any("followup" in s for s in subqueries):
            cross_session += 1
    assert cross_session > 0
