"""Engine-side failure injection: outages and malformed responses.

The search engine is outside every trust boundary; whatever it returns
must be handled defensively by the enclave — surfaced as controlled
errors, never as corrupted results silently handed to the user.
"""

import json

import pytest

from repro.core.protocol import SearchRequest
from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.errors import NetworkError, ReproError
from repro.search.tracking import TrackingSearchEngine


@pytest.fixture()
def proxy(small_engine):
    return XSearchProxyHost(
        TrackingSearchEngine(small_engine),
        k=1,
        history_capacity=100,
        rng_seed=4,
    )


def session(proxy, session_id="s"):
    initiator = HandshakeInitiator()
    proxy.begin_session(session_id, initiator.hello())
    return initiator.finish(proxy.channel_public())


def search(proxy, endpoint, session_id="s", query="hotel rome"):
    record = endpoint.encrypt(SearchRequest(query, 5).encode())
    return proxy.request(session_id, record)


def test_engine_http_error_surfaces(proxy, monkeypatch):
    endpoint = session(proxy)

    def failing_execute(subqueries, limit):
        raise NetworkError("backend exploded")

    monkeypatch.setattr(proxy.gateway, "_execute", failing_execute)
    # The gateway catches nothing: the failure propagates as an error, not
    # as fabricated results.
    with pytest.raises(ReproError):
        search(proxy, endpoint)


def test_engine_500_response(proxy, monkeypatch):
    endpoint = session(proxy)
    from repro.core import gateway as gw

    monkeypatch.setattr(
        proxy.gateway, "_handle_request",
        lambda request: gw._http_error(500, "internal error"),
    )
    with pytest.raises(NetworkError, match="HTTP 500"):
        search(proxy, endpoint)


def test_engine_malformed_json_body(proxy, monkeypatch):
    endpoint = session(proxy)
    from repro.core import gateway as gw

    monkeypatch.setattr(
        proxy.gateway, "_handle_request",
        lambda request: gw._http_response(200, b"this is not json"),
    )
    with pytest.raises(NetworkError):
        search(proxy, endpoint)


def test_engine_truncated_response(proxy, monkeypatch):
    endpoint = session(proxy)
    from repro.core import gateway as gw

    def truncating(request):
        full = gw._http_response(200, json.dumps([]).encode())
        return full[:len(full) // 2]

    monkeypatch.setattr(proxy.gateway, "_handle_request", truncating)
    with pytest.raises(NetworkError):
        search(proxy, endpoint)


def test_engine_empty_result_page_is_fine(proxy, monkeypatch):
    from repro.core import gateway as gw
    from repro.core.protocol import SearchResponse

    endpoint = session(proxy)
    monkeypatch.setattr(
        proxy.gateway, "_handle_request",
        lambda request: gw._http_response(200, b"[]"),
    )
    reply = search(proxy, endpoint)
    response = SearchResponse.decode(endpoint.decrypt(reply))
    assert response.results == ()


def test_recovery_after_engine_failure(proxy, monkeypatch):
    """A transient engine failure does not poison the session."""
    from repro.core.protocol import SearchResponse
    from repro.core import gateway as gw

    endpoint = session(proxy)
    original = proxy.gateway._handle_request
    monkeypatch.setattr(
        proxy.gateway, "_handle_request",
        lambda request: gw._http_error(500, "flaky"),
    )
    with pytest.raises(NetworkError):
        search(proxy, endpoint)
    monkeypatch.setattr(proxy.gateway, "_handle_request", original)
    reply = search(proxy, endpoint, query="diabetes symptoms")
    response = SearchResponse.decode(endpoint.decrypt(reply))
    assert response.results
