"""End-to-end scenarios across the whole stack."""

import random

import pytest

from repro.baselines.direct import DirectClient
from repro.baselines.peas import PeasSystem
from repro.baselines.tor import TorNetwork
from repro.core.deployment import XSearchDeployment
from repro.metrics.accuracy import precision_recall
from repro.search.tracking import TrackingSearchEngine


def test_full_session_lifecycle(deployment):
    """Figure 2's six steps, observed end to end."""
    deployment.warm_history([f"session warm {i}" for i in range(20)])
    before = len(deployment.tracking.observations)
    results = deployment.client.search("cheap hotel rome flight", 10)
    # 6) The user got relevant, cleaned results.
    assert results
    assert all("redirect?target=" not in r.url for r in results)
    # 4) Exactly one (obfuscated) query hit the engine.
    assert len(deployment.tracking.observations) == before + 1
    observation = deployment.tracking.observations[-1]
    assert observation.text.count(" OR ") == deployment.proxy.k
    # The proxy's identity, never the user's.
    assert observation.source == "xsearch-proxy.cloud"


def test_xsearch_accuracy_against_direct_results(deployment):
    """The filtered page largely matches what Direct would have returned."""
    deployment.warm_history(
        [f"warm noise {i} padding" for i in range(30)]
    )
    query = "diabetes symptoms treatment"
    direct = deployment.engine.search(query, 20)
    private = deployment.client.search(query, 20)
    precision, recall = precision_recall(direct, private)
    assert recall > 0.5
    assert precision > 0.5


def test_three_systems_side_by_side(small_engine):
    """Direct, Tor and X-Search on the same engine: what the engine learns."""
    tracking = TrackingSearchEngine(small_engine)
    query = "cheap hotel rome"

    DirectClient(tracking, user_id="alice").search(query, 5)
    direct_view = tracking.observations[-1]

    tor = TorNetwork(tracking, n_relays=5, n_exits=1, key_bits=1024)
    tor.client("alice", rng=random.Random(1)).search(query, 5)
    tor_view = tracking.observations[-1]

    deployment = XSearchDeployment.create(
        k=2, seed=5, history_capacity=1000, engine=small_engine
    )
    deployment.warm_history([f"warm {i} queries" for i in range(10)])
    deployment.client.search(query, 5)
    xsearch_view = deployment.tracking.observations[-1]

    # Direct: identity + query. Tor: query only. X-Search: neither.
    assert direct_view.source == "ip-alice" and direct_view.text == query
    assert tor_view.source.startswith("relay-") and tor_view.text == query
    assert xsearch_view.source == "xsearch-proxy.cloud"
    assert xsearch_view.text != query and query in xsearch_view.text


def test_peas_and_xsearch_results_comparable(small_engine, split_log):
    train, _ = split_log
    tracking = TrackingSearchEngine(small_engine)
    peas = PeasSystem.create(tracking, [q.text for q in train][:2000])
    peas_client = peas.client("bob", k=2, rng=random.Random(3))

    query = "cheap hotel rome"
    reference = small_engine.search(query, 20)
    peas_results = peas_client.search(query, 20)
    precision, recall = precision_recall(reference, peas_results)
    assert recall > 0.4


def test_history_is_shared_across_sessions(small_engine):
    """A query sent by one client can later serve as another's fake."""
    deployment = XSearchDeployment.create(
        k=3, seed=21, history_capacity=1000, engine=small_engine
    )
    tenant = deployment.new_broker("cross-session")
    marker = "crosssessionmarker999"
    tenant.search(marker, 5)
    # The history holds only the marker (plus the probes as they stream),
    # so the marker must quickly appear as a fake in another session.
    hits = 0
    for i in range(25):
        deployment.client.search(f"probe {i} hotel", 5)
        observed = deployment.tracking.observations[-1].text
        if marker in observed and f"probe {i} hotel" in observed:
            hits += 1
    assert hits > 0
