"""Fuzzing the attack surfaces: every decoder fails closed, never crashes.

The host, the network and other clients are all untrusted in the §3
adversary model, so every byte-level entry point must map arbitrary junk
to a controlled :class:`~repro.errors.ReproError` (or a clean rejection),
never to an unhandled exception or silent misbehaviour.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gateway import parse_results_body, split_http_response
from repro.core.protocol import (
    SearchRequest,
    SearchResponse,
    decode_any_request,
)
from repro.crypto.aead import aead_decrypt
from repro.crypto.https import decode_frames
from repro.errors import ReproError

junk = st.binary(min_size=0, max_size=300)


@given(data=junk)
@settings(max_examples=80, deadline=None)
def test_protocol_decoders_fail_closed(data):
    for decoder in (SearchRequest.decode, SearchResponse.decode,
                    decode_any_request):
        try:
            decoder(data)
        except ReproError:
            pass  # controlled rejection


@given(data=junk)
@settings(max_examples=80, deadline=None)
def test_http_splitter_fails_closed(data):
    try:
        split_http_response(data)
    except ReproError:
        pass


@given(data=junk)
@settings(max_examples=80, deadline=None)
def test_results_parser_fails_closed(data):
    try:
        parse_results_body(data)
    except ReproError:
        pass


@given(data=junk)
@settings(max_examples=60, deadline=None)
def test_aead_rejects_junk(data):
    with pytest.raises(ReproError):
        aead_decrypt(b"\x01" * 32, b"\x02" * 12, data + b"x" * 16)
        raise AssertionError("junk must never decrypt")  # pragma: no cover


@given(data=junk)
@settings(max_examples=80, deadline=None)
def test_frame_decoder_fails_closed(data):
    try:
        frames, rest = decode_frames(data)
        # Whatever was decoded must re-encode to a prefix of the input.
        assert isinstance(frames, list)
        assert isinstance(rest, bytes)
    except ReproError:
        pass


@given(record=junk)
@settings(max_examples=40, deadline=None)
def test_enclave_request_path_rejects_junk_records(record, deployment):
    """Random bytes thrown at the proxy's request ecall never crash the
    enclave; they fail with a controlled error."""
    with pytest.raises(ReproError):
        deployment.proxy.request(deployment.broker._session_id, record)


@given(text=st.text(min_size=0, max_size=50))
@settings(max_examples=40, deadline=None)
def test_engine_tolerates_arbitrary_query_strings(text, small_engine):
    """Any unicode query string yields a (possibly empty) result page."""
    results = small_engine.search(text or "x", 5)
    assert isinstance(results, list)
