"""TrackMeNot and GooPIR fake-query generators, plus the Direct baseline."""

import random
from collections import Counter

import pytest

from repro.baselines.direct import DirectClient
from repro.baselines.goopir import FrequencyDictionary, GooPir
from repro.baselines.trackmenot import RssFeed, TrackMeNot, TrackMeNotClient
from repro.errors import DatasetError


# ---------------------------------------------------------------------------
# TrackMeNot
# ---------------------------------------------------------------------------

def test_feed_is_deterministic():
    a = RssFeed(seed=3)
    b = RssFeed(seed=3)
    assert a.headlines == b.headlines
    assert len(a.headlines) == 500


def test_fakes_are_headline_windows():
    feed = RssFeed(seed=3, n_headlines=20)
    generator = TrackMeNot(feed, seed=3)
    headlines = [h.split() for h in feed.headlines]
    for _ in range(30):
        words = generator.generate_fake().split()
        assert 2 <= len(words) <= 4
        assert any(
            words == headline[i:i + len(words)]
            for headline in headlines
            for i in range(len(headline))
        )


def test_tmn_client_emits_fakes_then_real(tracking_engine):
    client = TrackMeNotClient(
        tracking_engine, TrackMeNot(seed=5), user_id="alice",
        fakes_per_query=3,
    )
    client.search("my real query", 5)
    mine = tracking_engine.queries_seen_from("ip-alice")
    assert len(mine) == 4
    assert mine[-1] == "my real query"
    # All traffic is attributed to the user: no unlinkability.
    assert tracking_engine.observations[-1].source == "ip-alice"


# ---------------------------------------------------------------------------
# GooPIR
# ---------------------------------------------------------------------------

TEXTS = [
    "hotel rome", "hotel paris", "hotel cheap", "rome weather",
    "diabetes diet", "nfl scores", "mortgage rates", "garden soil",
    "flight deals", "cruise caribbean",
] * 3


def test_dictionary_frequencies():
    dictionary = FrequencyDictionary.from_texts(TEXTS)
    assert dictionary.frequency("hotel") == 9
    assert dictionary.frequency("unknown") == 0


def test_similar_frequency_band_excludes_word():
    dictionary = FrequencyDictionary.from_texts(TEXTS)
    candidates = dictionary.similar_frequency_words("rome", band=5)
    assert candidates
    assert "rome" not in candidates


def test_goopir_fake_matches_query_shape():
    dictionary = FrequencyDictionary.from_texts(TEXTS)
    goopir = GooPir(dictionary, k=2, rng=random.Random(1))
    fake = goopir.generate_fake("hotel rome")
    assert len(fake.split()) == 2
    assert fake != "hotel rome"


def test_goopir_protect_layout():
    dictionary = FrequencyDictionary.from_texts(TEXTS)
    goopir = GooPir(dictionary, k=3, rng=random.Random(2))
    subqueries = goopir.protect("hotel rome")
    assert len(subqueries) == 4
    assert subqueries.count("hotel rome") == 1


def test_goopir_empty_dictionary_rejected():
    with pytest.raises(DatasetError):
        FrequencyDictionary(Counter())


# ---------------------------------------------------------------------------
# Direct
# ---------------------------------------------------------------------------

def test_direct_client_fully_exposed(tracking_engine):
    client = DirectClient(tracking_engine, user_id="bob")
    results = client.search("diabetes symptoms treatment", 5)
    assert results
    observation = tracking_engine.observations[-1]
    assert observation.source == "ip-bob"
    assert observation.text == "diabetes symptoms treatment"
