"""RAC (ring broadcasts + freerider detection) and Dissent (DC-nets)."""

import random

import pytest

from repro.baselines.dissent import (
    MESSAGE_SLOT_BYTES,
    DissentGroup,
)
from repro.baselines.rac import RacRing
from repro.errors import CircuitError, NetworkError, ProtocolError


# ---------------------------------------------------------------------------
# RAC
# ---------------------------------------------------------------------------

@pytest.fixture()
def ring(tracking_engine):
    return RacRing(tracking_engine, n_nodes=5)


def test_rac_anonymous_search(ring, tracking_engine):
    results = ring.anonymous_search(random.Random(1), "cheap hotel rome", 10)
    assert len(results) == 10
    assert tracking_engine.observations[-1].source.startswith("rac-")


def test_rac_broadcast_amplification(ring):
    before = ring.messages_sent
    ring.anonymous_search(random.Random(2), "hotel", 5)
    sent = ring.messages_sent - before
    # Each of the 3 relays broadcasts to all 5 ring members, plus forwards
    # and the response path: far more traffic than Tor's 1 message/hop.
    assert sent >= 3 * len(ring.nodes)


def test_rac_all_nodes_see_broadcasts(ring):
    ring.anonymous_search(random.Random(3), "hotel", 5)
    assert all(node.broadcast_ledger for node in ring.nodes)


def test_rac_freerider_detected(ring):
    ring.nodes[0].faulty = True
    rng = random.Random(5)
    # Run until the faulty node lands on a path; it must be accused.
    with pytest.raises(NetworkError, match="freerider detected: node n00"):
        for _ in range(50):
            ring.anonymous_search(rng, "hotel", 5)


def test_rac_honest_ring_never_accuses(ring):
    rng = random.Random(7)
    for _ in range(10):
        ring.anonymous_search(rng, "hotel", 5)  # no exception


def test_rac_minimum_size(tracking_engine):
    with pytest.raises(CircuitError):
        RacRing(tracking_engine, n_nodes=2)


# ---------------------------------------------------------------------------
# Dissent
# ---------------------------------------------------------------------------

@pytest.fixture()
def group(tracking_engine):
    return DissentGroup(tracking_engine, n_members=4)


def test_dcnet_round_recovers_message(group):
    recovered, _ = group.run_round(1, b"anonymous hello")
    assert recovered == b"anonymous hello"


def test_dcnet_any_member_can_send(group):
    for sender in range(len(group.members)):
        recovered, _ = group.run_round(sender, b"msg")
        assert recovered == b"msg"


def test_dcnet_cloaks_look_random(group):
    """No single cloak reveals the message or the sender: each cloak is a
    XOR of pseudo-random pads."""
    message = b"supersecret" * 3
    _, commitments = group.run_round(0, message)
    for _, cloak in commitments:
        assert message not in cloak


def test_dcnet_sender_indistinguishable_across_rounds(group):
    """The sender's cloak is not systematically distinguishable: cloak
    sizes and entropy are identical for sender and non-senders."""
    _, commitments = group.run_round(2, b"x")
    lengths = {len(cloak) for _, cloak in commitments}
    assert lengths == {MESSAGE_SLOT_BYTES}


def test_dcnet_accountability_blames_cheater(group):
    recovered, commitments = group.run_round(0, b"m")
    # An honest round blames nobody.
    assert DissentGroup.verify_round(commitments) == []
    # A member who reveals a different cloak than committed is caught.
    commitment, cloak = commitments[2]
    forged = list(commitments)
    forged[2] = (commitment, bytes(MESSAGE_SLOT_BYTES))
    assert DissentGroup.verify_round(forged) == [2]


def test_dcnet_cost_accounting(group):
    group.run_round(0, b"m")
    n = len(group.members)
    assert group.pad_derivations == n * (n - 1)
    assert group.transmissions == n


def test_dissent_anonymous_search(group, tracking_engine):
    results = group.anonymous_search(1, "cheap hotel rome", 10)
    assert len(results) == 10
    assert tracking_engine.observations[-1].source == group.address


def test_dissent_message_size_bound(group):
    with pytest.raises(ProtocolError):
        group.run_round(0, b"x" * (MESSAGE_SLOT_BYTES + 1))


def test_dissent_sender_index_validated(group):
    with pytest.raises(ProtocolError):
        group.anonymous_search(99, "q")


def test_dissent_minimum_size(tracking_engine):
    with pytest.raises(ProtocolError):
        DissentGroup(tracking_engine, n_members=2)
