"""QueryScrambler: semantic generalisation instead of the real query."""

import random

import pytest

from repro.baselines.queryscrambler import QueryScrambler, QueryScramblerClient
from repro.errors import DatasetError


@pytest.fixture()
def scrambler():
    return QueryScrambler(n_related=4, rng=random.Random(3))


def test_related_queries_exclude_original(scrambler):
    related = scrambler.related_queries("hotel flight rome")
    assert related
    assert "hotel flight rome" not in related
    assert len(related) <= 4


def test_related_queries_stay_on_topic(scrambler):
    from repro.datasets.topics import TOPIC_TERMS

    travel = set(TOPIC_TERMS["travel"])
    for related in scrambler.related_queries("hotel flight"):
        for word in related.split():
            assert word in travel


def test_unknown_terms_kept_verbatim(scrambler):
    related = scrambler.related_queries("hotel best")
    # 'best' is a modifier, not a topic concept: it survives scrambling.
    assert all("best" == r.split()[1] for r in related)


def test_empty_query_rejected(scrambler):
    with pytest.raises(DatasetError):
        scrambler.related_queries("  !! ")


def test_n_related_validated():
    with pytest.raises(DatasetError):
        QueryScrambler(n_related=0)


def test_client_never_sends_original(tracking_engine, scrambler):
    client = QueryScramblerClient(
        tracking_engine, scrambler, user_id="carol"
    )
    client.search("hotel flight rome", 10)
    seen = tracking_engine.queries_seen_from("ip-carol")
    assert seen
    assert "hotel flight rome" not in seen
    assert set(seen) == set(client.last_sent)


def test_client_results_still_relevant(tracking_engine, scrambler):
    client = QueryScramblerClient(
        tracking_engine, scrambler, user_id="carol"
    )
    results = client.search("hotel flight rome", 10)
    assert results
    # Results come from the same topic neighbourhood as the original.
    assert any("travel" in r.url for r in results)
    assert [r.rank for r in results] == list(range(1, len(results) + 1))


def test_client_results_deduplicated(tracking_engine, scrambler):
    client = QueryScramblerClient(
        tracking_engine, scrambler, user_id="carol"
    )
    results = client.search("hotel flight", 15)
    urls = [r.url for r in results]
    assert len(urls) == len(set(urls))
