"""Tor baseline: functional onion routing and who-learns-what."""

import random

import pytest

from repro.baselines.tor import DirectoryAuthority, Relay, TorNetwork
from repro.errors import AuthenticationError, CircuitError


@pytest.fixture()
def network(tracking_engine):
    return TorNetwork(tracking_engine, n_relays=5, n_exits=2, key_bits=1024)


def test_search_through_circuit(network, tracking_engine):
    client = network.client("alice", rng=random.Random(1))
    results = client.search("cheap hotel rome", 10)
    assert len(results) == 10
    assert results[0].title


def test_engine_sees_exit_not_client(network, tracking_engine):
    client = network.client("alice", rng=random.Random(2))
    client.search("very sensitive query", 5)
    source = tracking_engine.observations[-1].source
    assert source.startswith("relay-")
    assert "alice" not in source


def test_exit_sees_plaintext_query(network):
    client = network.client("alice", rng=random.Random(3))
    client.search("observable query", 5)
    exit_views = [
        o for relay in network.relays for o in relay.observations
        if o.saw_plaintext_query
    ]
    assert exit_views
    assert exit_views[-1].saw_plaintext_query == "observable query"


def test_guard_sees_client_but_not_query(network):
    client = network.client("alice", rng=random.Random(4))
    client.search("hidden from guard", 5)
    guard_views = [
        o for relay in network.relays for o in relay.observations
        if o.previous_hop == "ip-alice"
    ]
    assert guard_views
    for view in guard_views:
        assert not view.saw_plaintext_query
        assert view.next_hop != "ENGINE"


def test_middle_relay_sees_neither_endpoint(network):
    client = network.client("alice", rng=random.Random(5))
    client.search("q", 5)
    # The middle relay's observation: previous hop is a relay, next hop is a
    # relay — it never learns the client address or the query.
    middle_views = [
        o for relay in network.relays for o in relay.observations
        if o.previous_hop.startswith("relay-") and o.next_hop.startswith("r")
        and o.next_hop != "ENGINE"
    ]
    assert middle_views
    for view in middle_views:
        assert not view.saw_plaintext_query


def test_collusion_exit_plus_engine_breaks_query_privacy(network,
                                                         tracking_engine):
    """The §3 collusion scenario the paper's analysis warns about: the exit
    and the engine together hold the plaintext query (though still not the
    client identity — only a traffic-analysis step away)."""
    client = network.client("alice", rng=random.Random(6))
    client.search("colluding parties see this", 5)
    exit_query = next(
        o.saw_plaintext_query for relay in network.relays
        for o in relay.observations if o.saw_plaintext_query
    )
    assert exit_query == tracking_engine.observations[-1].text


def test_consensus_signature_verifies(network):
    document, signature = network.directory.consensus()
    network.directory.public_key.verify(document, signature)


def test_tampered_consensus_rejected(network):
    document, signature = network.directory.consensus()
    with pytest.raises(AuthenticationError):
        network.directory.public_key.verify(document + b"x", signature)


def test_layers_peel_in_order(network):
    client = network.client("alice", rng=random.Random(7))
    client.search("q", 5)
    guard, middle, exit_relay = client._circuit.path
    assert guard.observations[-1].next_hop == middle.relay_id
    assert middle.observations[-1].next_hop == exit_relay.relay_id
    assert exit_relay.observations[-1].next_hop == "ENGINE"


def test_duplicate_circuit_id_rejected(network):
    relay = network.relays[-1]
    from repro.crypto.dh import DhKeyPair

    ephemeral = DhKeyPair()
    relay.create_circuit("c1", ephemeral.public_bytes())
    with pytest.raises(CircuitError):
        relay.create_circuit("c1", ephemeral.public_bytes())


def test_unknown_circuit_rejected(network):
    with pytest.raises(CircuitError):
        network.relays[0].peel("ghost", "ip-x", b"\x00" * 32)


def test_too_few_relays_rejected(tracking_engine):
    with pytest.raises(CircuitError):
        TorNetwork(tracking_engine, n_relays=3, n_exits=2, key_bits=1024)


def test_relay_cannot_peel_foreign_layer(network):
    client = network.client("alice", rng=random.Random(8))
    client.build_circuit()
    circuit = client._circuit
    onion = circuit.endpoints[0].encrypt(b"layer for the guard")
    wrong_relay = next(
        r for r in network.relays if r not in circuit.path
    )
    with pytest.raises(CircuitError):
        wrong_relay.peel(circuit.circuit_id, "ip-alice", onion)
