"""The PEAS co-occurrence fake-query model."""

import random

import pytest

from repro.baselines.cooccurrence import CooccurrenceModel
from repro.errors import DatasetError

TRAIN = [
    "cheap hotel rome",
    "hotel booking",
    "rome weather",
    "diabetes diet",
    "diet plan",
]


@pytest.fixture()
def model():
    return CooccurrenceModel(TRAIN)


def test_term_frequencies(model):
    assert model.term_frequency["hotel"] == 2
    assert model.term_frequency["rome"] == 2
    assert model.term_frequency["plan"] == 1


def test_cooccurrence_symmetric(model):
    assert model.cooccurrence["hotel"]["rome"] == 1
    assert model.cooccurrence["rome"]["hotel"] == 1
    assert model.cooccurrence["diabetes"]["diet"] == 1


def test_no_self_cooccurrence(model):
    assert model.cooccurrence["hotel"]["hotel"] == 0


def test_length_distribution(model):
    assert model.length_distribution[3] == 1
    assert model.length_distribution[2] == 4


def test_sample_length_in_support(model):
    rng = random.Random(1)
    for _ in range(50):
        assert model.sample_length(rng) in (2, 3)


def test_generated_fake_uses_vocabulary(model):
    rng = random.Random(2)
    for _ in range(30):
        fake = model.generate_fake(rng)
        for word in fake.split():
            assert word in model.term_frequency


def test_generated_fake_respects_length(model):
    rng = random.Random(3)
    fake = model.generate_fake(rng, length=3)
    assert 1 <= len(fake.split()) <= 3


def test_fakes_follow_cooccurrence_edges(model):
    rng = random.Random(4)
    # With this small training set, consecutive words in a fake should be
    # co-occurrence neighbours most of the time.
    neighbour_pairs = 0
    total_pairs = 0
    for _ in range(100):
        words = model.generate_fake(rng, length=2).split()
        for a, b in zip(words, words[1:]):
            total_pairs += 1
            if model.cooccurrence[a][b] > 0:
                neighbour_pairs += 1
    assert total_pairs > 0
    assert neighbour_pairs / total_pairs > 0.6


def test_generate_fakes_count(model):
    assert len(model.generate_fakes(5, random.Random(5))) == 5


def test_empty_training_rejected():
    with pytest.raises(DatasetError):
        CooccurrenceModel([])
    with pytest.raises(DatasetError):
        CooccurrenceModel(["", "   "])
