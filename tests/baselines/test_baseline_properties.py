"""Property-based tests on the anonymity-network primitives."""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dissent import (
    MESSAGE_SLOT_BYTES,
    DissentMember,
    _pack,
    _unpack,
    _xor,
)
from repro.crypto.channel import ChannelEndpoint
from repro.crypto.kdf import derive_subkeys


# ---------------------------------------------------------------------------
# Onion layering (the Tor/RAC cell construction)
# ---------------------------------------------------------------------------

@given(
    payload=st.binary(min_size=0, max_size=200),
    n_layers=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_onion_layers_peel_in_reverse_order(payload, n_layers, seed):
    """Wrapping with N independent keys and peeling in reverse recovers
    the payload; peeling out of order never does."""
    rng = random.Random(seed)
    pairs = []
    for i in range(n_layers):
        secret = bytes(rng.randrange(256) for _ in range(32))
        keys = derive_subkeys(secret, ["f", "b"], salt=b"onion-test")
        sender = ChannelEndpoint(send_key=keys["f"], recv_key=keys["b"])
        receiver = ChannelEndpoint(send_key=keys["b"], recv_key=keys["f"])
        pairs.append((sender, receiver))

    onion = payload
    for sender, _ in reversed(pairs):
        onion = sender.encrypt(onion)
    blob = onion
    for _, receiver in pairs:
        blob = receiver.decrypt(blob)
    assert blob == payload


# ---------------------------------------------------------------------------
# DC-net algebra
# ---------------------------------------------------------------------------

@given(message=st.binary(min_size=0, max_size=MESSAGE_SLOT_BYTES - 2))
@settings(max_examples=60, deadline=None)
def test_slot_pack_unpack_roundtrip(message):
    assert _unpack(_pack(message)) == message


@given(
    a=st.binary(min_size=16, max_size=16),
    b=st.binary(min_size=16, max_size=16),
)
@settings(max_examples=60, deadline=None)
def test_xor_properties(a, b):
    assert _xor(a, b) == _xor(b, a)
    assert _xor(_xor(a, b), b) == a
    assert _xor(a, bytes(16)) == a


@given(
    n_members=st.integers(min_value=3, max_value=6),
    sender=st.data(),
    message=st.binary(min_size=1, max_size=64),
)
@settings(max_examples=20, deadline=None)
def test_dcnet_pads_cancel_for_any_group_size(n_members, sender, message):
    members = [DissentMember(f"m{i}") for i in range(n_members)]
    for member in members:
        for other in members:
            if member is not other:
                member.establish_pairwise(other)
    sender_index = sender.draw(
        st.integers(min_value=0, max_value=n_members - 1)
    )
    round_id = "fixed-round"
    combined = bytes(MESSAGE_SLOT_BYTES)
    for index, member in enumerate(members):
        cloak = member.cloak(
            round_id, message if index == sender_index else None
        )
        combined = _xor(combined, cloak)
    assert _unpack(combined) == message
