"""Tor path selection: bandwidth weighting and circuit rotation."""

import random
from collections import Counter

import pytest

from repro.baselines.tor import TorNetwork
from repro.errors import CircuitError


def test_bandwidth_weighted_selection(tracking_engine):
    # One non-exit relay is 50x faster than the others; it should appear
    # on the vast majority of circuits.
    network = TorNetwork(
        tracking_engine,
        n_relays=5,
        n_exits=1,
        key_bits=1024,
        bandwidths_kbps=[1000, 50_000, 1000, 1000, 1000],
    )
    fast_relay = network.relays[1].relay_id
    rng = random.Random(7)
    client = network.client("alice", rng=rng)
    chosen = Counter()
    for _ in range(40):
        client.new_circuit()
        for relay in client._circuit.path[:2]:  # guard + middle
            chosen[relay.relay_id] += 1
    assert chosen[fast_relay] > 30


def test_guard_middle_exit_distinct(tracking_engine):
    network = TorNetwork(tracking_engine, n_relays=5, n_exits=2,
                         key_bits=1024)
    client = network.client("alice", rng=random.Random(3))
    for _ in range(20):
        client.new_circuit()
        ids = [relay.relay_id for relay in client._circuit.path]
        assert len(set(ids)) == 3


def test_new_circuit_changes_circuit_id(tracking_engine):
    network = TorNetwork(tracking_engine, n_relays=5, n_exits=1,
                         key_bits=1024)
    client = network.client("alice", rng=random.Random(4))
    first = client.build_circuit()
    second = client.new_circuit()
    assert first != second
    # The new circuit still works.
    assert client.search("hotel rome", 5)


def test_bandwidth_vector_validated(tracking_engine):
    with pytest.raises(CircuitError):
        TorNetwork(tracking_engine, n_relays=5, n_exits=1, key_bits=1024,
                   bandwidths_kbps=[100, 200])


def test_consensus_carries_bandwidth(tracking_engine):
    import json

    network = TorNetwork(tracking_engine, n_relays=5, n_exits=1,
                         key_bits=1024,
                         bandwidths_kbps=[111, 222, 333, 444, 555])
    document, _ = network.directory.consensus()
    entries = json.loads(document.decode("utf-8"))
    assert sorted(e["bandwidth"] for e in entries) == [111, 222, 333, 444,
                                                       555]
