"""PEAS baseline: two-proxy unlinkability + client-side obfuscation."""

import random

import pytest

from repro.baselines.peas import PeasSystem
from repro.errors import ProtocolError

TRAIN = [
    "cheap hotel rome", "hotel booking paris", "diabetes symptoms",
    "diabetes diet plan", "nfl playoffs schedule", "nba standings",
    "gardening roses soil", "mortgage refinance rates",
] * 5


@pytest.fixture()
def system(tracking_engine):
    return PeasSystem.create(tracking_engine, TRAIN)


def test_search_returns_filtered_results(system):
    client = system.client("alice", k=2, rng=random.Random(1))
    results = client.search("cheap hotel rome", 10)
    assert results
    assert all(r.title for r in results)


def test_protect_contains_original_and_k_fakes(system):
    client = system.client("alice", k=3, rng=random.Random(2))
    subqueries = client.protect("my real query")
    assert len(subqueries) == 4
    assert subqueries.count("my real query") == 1


def test_receiver_sees_identity_but_only_ciphertext(system):
    client = system.client("alice", k=2, rng=random.Random(3))
    client.search("supersecretquery", 5)
    observation = system.receiver.observations[-1]
    assert observation.client_address == "ip-alice"
    assert observation.ciphertext_bytes > 0
    # The receiver never handles anything containing the plaintext.
    assert not hasattr(observation, "subqueries")


def test_issuer_sees_queries_but_no_identity(system):
    client = system.client("alice", k=2, rng=random.Random(4))
    client.search("visible to issuer", 5)
    observation = system.issuer.observations[-1]
    assert "visible to issuer" in observation.subqueries
    assert len(observation.subqueries) == 3
    assert not any("alice" in q for q in observation.subqueries)


def test_engine_sees_issuer_address(system, tracking_engine):
    client = system.client("alice", k=1, rng=random.Random(5))
    client.search("hotel rome", 5)
    assert tracking_engine.observations[-1].source == system.issuer.address


def test_collusion_receiver_plus_issuer_links_user_to_query(system):
    """The weak adversary model the paper criticises: if the two proxies
    collude, joining their observations re-links identity and query."""
    client = system.client("alice", k=2, rng=random.Random(6))
    client.search("deanonymized by collusion", 5)
    receiver_view = system.receiver.observations[-1]
    issuer_view = system.issuer.observations[-1]
    # Same request position in both logs = trivially joinable.
    assert receiver_view.client_address == "ip-alice"
    assert "deanonymized by collusion" in issuer_view.subqueries


def test_malformed_envelope_rejected(system):
    with pytest.raises(ProtocolError):
        system.issuer.handle(b"not a peas envelope")


def test_fakes_come_from_cooccurrence_vocabulary(system):
    client = system.client("alice", k=4, rng=random.Random(7))
    subqueries = client.protect("zzz unseen query zzz")
    from repro.textutils import tokenize

    vocabulary = set(system.model.term_frequency)
    for fake in subqueries:
        if fake == "zzz unseen query zzz":
            continue
        assert set(tokenize(fake)) <= vocabulary
