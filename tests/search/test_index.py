"""Inverted index behaviour."""

import pytest

from repro.errors import SearchError
from repro.search.documents import WebDocument
from repro.search.index import InvertedIndex


def doc(doc_id, title, body):
    return WebDocument(doc_id=doc_id, url=f"http://d{doc_id}.example.com",
                       title=title, body=body)


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.add_all([
        doc(1, "hotel rome", "cheap hotel in rome near the station"),
        doc(2, "diabetes symptoms", "early diabetes symptoms and treatment"),
        doc(3, "rome weather", "rome weather forecast for travel"),
    ])
    return idx


def test_document_frequency(index):
    assert index.document_frequency("rome") == 2
    assert index.document_frequency("diabetes") == 1
    assert index.document_frequency("absent") == 0


def test_postings_have_field_tfs(index):
    postings = {p.doc_id: p for p in index.postings("rome")}
    assert postings[1].title_tf == 1
    assert postings[1].body_tf == 1
    assert postings[3].title_tf == 1


def test_title_terms_weighted(index):
    posting = next(p for p in index.postings("hotel") if p.doc_id == 1)
    assert posting.weighted_tf > posting.body_tf


def test_stopwords_not_indexed(index):
    assert index.document_frequency("the") == 0


def test_duplicate_doc_id_rejected(index):
    with pytest.raises(SearchError):
        index.add(doc(1, "dup", "dup"))


def test_document_lookup(index):
    assert index.document(2).title == "diabetes symptoms"
    with pytest.raises(SearchError):
        index.document(99)


def test_statistics(index):
    assert index.n_documents == 3
    assert index.average_doc_length > 0
    assert index.vocabulary_size() > 5
    assert index.doc_length(1) > 0


def test_empty_index_statistics():
    idx = InvertedIndex()
    assert idx.n_documents == 0
    assert idx.average_doc_length == 0.0


def test_document_needs_url():
    with pytest.raises(SearchError):
        WebDocument(doc_id=1, url="", title="t", body="b")
