"""BM25 ranking semantics."""

import pytest

from repro.search.documents import WebDocument
from repro.search.index import InvertedIndex
from repro.search.ranking import Bm25Parameters, Bm25Ranker


def build(docs):
    idx = InvertedIndex()
    for i, (title, body) in enumerate(docs):
        idx.add(WebDocument(doc_id=i, url=f"http://d{i}.example.com",
                            title=title, body=body))
    return idx, Bm25Ranker(idx)


def test_exact_topic_document_ranks_first():
    idx, ranker = build([
        ("hotel rome", "hotel rome hotel rome booking"),
        ("gardening tips", "roses and soil and compost"),
        ("rome history", "the roman empire ancient rome"),
    ])
    top = ranker.top(["hotel", "rome"], 3)
    assert top[0][0] == 0


def test_disjunctive_matching():
    idx, ranker = build([
        ("hotel", "hotel"),
        ("rome", "rome"),
        ("unrelated", "gardening"),
    ])
    scores = ranker.score(["hotel", "rome"])
    assert set(scores) == {0, 1}  # any matching term qualifies


def test_absent_term_scores_nothing():
    idx, ranker = build([("a", "b")])
    assert ranker.score(["missing"]) == {}


def test_rare_terms_weigh_more():
    idx, ranker = build([
        ("common rare", "common rare"),
        ("common", "common common"),
        ("common", "common"),
        ("common", "common"),
    ])
    scores = ranker.score(["rare"])
    common_scores = ranker.score(["common"])
    assert scores[0] > common_scores[0]


def test_top_respects_limit_and_order():
    idx, ranker = build([(f"term{i}", "shared word") for i in range(5)])
    top = ranker.top(["shared"], 3)
    assert len(top) == 3
    assert all(top[i][1] >= top[i + 1][1] for i in range(len(top) - 1))


def test_duplicate_query_terms_do_not_double_count():
    idx, ranker = build([("hotel", "hotel")])
    once = ranker.score(["hotel"])
    twice = ranker.score(["hotel", "hotel"])
    assert once == twice


def test_parameters_are_applied():
    docs = [("hotel", "hotel " * 30), ("hotel", "hotel")]
    idx, _ = build(docs)
    flat = Bm25Ranker(idx, Bm25Parameters(k1=0.01, b=0.0)).score(["hotel"])
    spiky = Bm25Ranker(idx, Bm25Parameters(k1=2.0, b=0.0)).score(["hotel"])
    # With tiny k1, term-frequency saturation flattens the scores.
    assert abs(flat[0] - flat[1]) < abs(spiky[0] - spiky[1])
