"""Shared tokenisation and similarity primitives."""

from collections import Counter

from repro.textutils import (
    cosine_similarity,
    nb_common_words,
    normalize,
    term_vector,
    tokenize,
)


def test_tokenize_lowercases_and_splits():
    assert tokenize("Cheap HOTEL Rome!") == ["cheap", "hotel", "rome"]


def test_tokenize_keeps_numbers():
    assert tokenize("windows 95 drivers") == ["windows", "95", "drivers"]


def test_tokenize_drop_stopwords():
    assert tokenize("the best of rome", drop_stopwords=True) == ["best", "rome"]


def test_tokenize_keeps_stopwords_by_default():
    assert "the" in tokenize("the best of rome")


def test_tokenize_empty():
    assert tokenize("") == []
    assert tokenize("!!! ???") == []


def test_normalize():
    assert normalize("  HeLLo ") == "hello"


def test_term_vector_counts():
    assert term_vector("rome rome hotel") == Counter(
        {"rome": 2, "hotel": 1}
    )


def test_cosine_identical_is_one():
    v = term_vector("cheap hotel rome")
    assert cosine_similarity(v, v) == 1.0 or abs(cosine_similarity(v, v) - 1.0) < 1e-12


def test_cosine_disjoint_is_zero():
    assert cosine_similarity(term_vector("hotel"), term_vector("diabetes")) == 0.0


def test_cosine_partial_overlap_between_zero_and_one():
    sim = cosine_similarity(term_vector("cheap hotel"), term_vector("hotel rome"))
    assert 0.0 < sim < 1.0


def test_cosine_empty_vector():
    assert cosine_similarity(Counter(), term_vector("hotel")) == 0.0


def test_cosine_symmetric():
    a, b = term_vector("cheap hotel rome"), term_vector("rome weather")
    assert cosine_similarity(a, b) == cosine_similarity(b, a)


def test_nb_common_words():
    assert nb_common_words("cheap hotel rome", "Hotel Rome official site") == 2
    assert nb_common_words("diabetes", "hotel rome") == 0


def test_nb_common_words_counts_distinct_words():
    # Repeated words count once (set semantics, as in Algorithm 2).
    assert nb_common_words("rome rome", "rome rome rome") == 1
