"""Search engine: result pages, OR merging, tracking URLs, corpus."""

import pytest

from repro.errors import SearchError
from repro.search.corpus import CorpusConfig, CorpusGenerator
from repro.search.engine import SearchEngine


@pytest.fixture(scope="module")
def engine():
    return SearchEngine.with_synthetic_corpus(
        seed=3, config=CorpusConfig(docs_per_topic=40)
    )


def test_results_are_topical(engine):
    results = engine.search("cheap hotel rome flight", 10)
    assert results
    assert any("travel" in r.url for r in results[:5])


def test_limit_respected(engine):
    assert len(engine.search("hotel", 5)) == 5


def test_ranks_sequential(engine):
    results = engine.search("hotel flight", 10)
    assert [r.rank for r in results] == list(range(1, len(results) + 1))


def test_scores_descending(engine):
    results = engine.search("hotel flight", 10)
    assert all(results[i].score >= results[i + 1].score
               for i in range(len(results) - 1))


def test_stopword_only_query_returns_empty_page(engine):
    assert engine.search("the of and", 10) == []


def test_limit_must_be_positive(engine):
    with pytest.raises(SearchError):
        engine.search("hotel", 0)


def test_tracking_redirects_present_and_strippable(engine):
    result = engine.search("hotel", 1)[0]
    assert result.url.startswith("http://engine.example.com/redirect?target=")
    assert result.strip_tracking().url.startswith("http://www.")


def test_snippets_contain_query_context(engine):
    results = engine.search("diabetes symptoms", 5)
    assert any(
        "diabetes" in r.snippet or "symptoms" in r.snippet for r in results
    )


def test_search_or_merges_and_dedupes(engine):
    merged = engine.search_or(["hotel rome", "diabetes symptoms"], 10)
    urls = [r.url for r in merged]
    assert len(urls) == len(set(urls))
    assert len(merged) > 10  # more than one page's worth
    assert [r.rank for r in merged] == list(range(1, len(merged) + 1))


def test_search_or_interleaves_subqueries(engine):
    merged = engine.search_or(["hotel rome", "diabetes symptoms"], 10)
    top_urls = " ".join(r.url for r in merged[:4])
    assert "travel" in top_urls and "health" in top_urls


def test_search_or_single_subquery_equals_search(engine):
    assert [r.url for r in engine.search_or(["hotel rome"], 10)] == [
        r.url for r in engine.search("hotel rome", 10)
    ]


def test_search_or_requires_subqueries(engine):
    with pytest.raises(SearchError):
        engine.search_or([], 10)


def test_queries_served_counter(engine):
    before = engine.queries_served
    engine.search("hotel", 1)
    assert engine.queries_served == before + 1


def test_pagination_offsets(engine):
    first_page = engine.search("hotel", 10)
    second_page = engine.search("hotel", 10, offset=10)
    assert len(second_page) == 10
    assert [r.rank for r in second_page] == list(range(11, 21))
    assert not set(r.url for r in first_page) & set(r.url for r in second_page)


def test_pagination_concatenates_to_deep_page(engine):
    deep = engine.search("hotel", 20)
    paged = engine.search("hotel", 10) + engine.search("hotel", 10, offset=10)
    assert [r.url for r in deep] == [r.url for r in paged]


def test_pagination_past_the_end(engine):
    assert engine.search("hotel", 10, offset=100_000) == []


def test_negative_offset_rejected(engine):
    with pytest.raises(SearchError):
        engine.search("hotel", 10, offset=-1)


# ---------------------------------------------------------------------------
# Corpus generator
# ---------------------------------------------------------------------------

def test_corpus_is_deterministic():
    a = CorpusGenerator(CorpusConfig(docs_per_topic=5), seed=9).generate()
    b = CorpusGenerator(CorpusConfig(docs_per_topic=5), seed=9).generate()
    assert [d.url for d in a] == [d.url for d in b]
    assert [d.body for d in a] == [d.body for d in b]


def test_corpus_counts():
    docs = CorpusGenerator(CorpusConfig(docs_per_topic=5), seed=9).generate()
    from repro.datasets.topics import TOPIC_TERMS

    assert len(docs) == 5 * len(TOPIC_TERMS)
    assert len({d.doc_id for d in docs}) == len(docs)


def test_corpus_titles_topical():
    docs = CorpusGenerator(CorpusConfig(docs_per_topic=3), seed=9).generate()
    from repro.datasets.topics import TOPIC_TERMS, MODIFIERS

    travel_docs = [d for d in docs if "travel" in d.url]
    vocabulary = set(TOPIC_TERMS["travel"]) | set(MODIFIERS)
    for document in travel_docs:
        assert set(document.title.split()) <= vocabulary


def test_corpus_config_validation():
    with pytest.raises(SearchError):
        CorpusGenerator(CorpusConfig(docs_per_topic=0), seed=1).generate()
