"""The honest-but-curious engine wrapper."""

from repro.search.tracking import TrackingSearchEngine


def test_serves_results_honestly(tracking_engine):
    direct = tracking_engine._engine.search("hotel rome", 5)
    via = tracking_engine.search_from("ip-alice", "hotel rome", 5)
    assert [r.url for r in via] == [r.url for r in direct]


def test_observes_source_and_text(tracking_engine):
    tracking_engine.search_from("ip-alice", "hotel rome", 5, timestamp=12.0)
    obs = tracking_engine.observations[-1]
    assert obs.source == "ip-alice"
    assert obs.text == "hotel rome"
    assert obs.timestamp == 12.0


def test_profiles_accumulate_per_source(tracking_engine):
    tracking_engine.search_from("ip-bob", "diabetes symptoms", 5)
    tracking_engine.search_from("ip-bob", "diabetes diet", 5)
    profile = tracking_engine.observed_profile("ip-bob")
    assert profile["diabetes"] == 2
    assert profile["diet"] == 1


def test_or_queries_logged_as_single_observation(tracking_engine):
    tracking_engine.search_or_from("ip-proxy", ["a b", "c d"], 5)
    assert tracking_engine.observations[-1].text == "a b OR c d"


def test_queries_seen_from(tracking_engine):
    tracking_engine.search_from("ip-carol", "first", 5)
    tracking_engine.search_from("ip-carol", "second", 5)
    assert tracking_engine.queries_seen_from("ip-carol") == ["first", "second"]


def test_observed_sources_sorted(tracking_engine):
    tracking_engine.search_from("ip-zed", "q", 5)
    tracking_engine.search_from("ip-amy", "q", 5)
    sources = tracking_engine.observed_sources()
    assert sources == sorted(sources)
