"""Two-server PIR: correctness, privacy, collusion, costs."""

import random

import pytest

from repro.errors import ProtocolError
from repro.pir.database import BlockDatabase
from repro.pir.protocol import PirClient, PirServer, collude


def make_database(n=16, block_size=32):
    records = [f"record {i}".encode() for i in range(n)]
    return BlockDatabase(records, block_size=block_size)


def make_stack(n=16):
    database = make_database(n)
    return (
        PirServer(database, name="a"),
        PirServer(database, name="b"),
        PirClient(n, rng=random.Random(7)),
        database,
    )


# ---------------------------------------------------------------------------
# Database
# ---------------------------------------------------------------------------

def test_blocks_padded_to_size():
    database = make_database(block_size=32)
    assert all(len(database.block(i)) == 32 for i in range(len(database)))


def test_oversized_record_rejected():
    with pytest.raises(ProtocolError):
        BlockDatabase([b"x" * 100], block_size=32)


def test_empty_database_rejected():
    with pytest.raises(ProtocolError):
        BlockDatabase([], block_size=32)


def test_xor_subset_touches_every_block():
    database = make_database(8)
    _, scanned = database.xor_subset({0})
    assert scanned == 8  # obliviousness requires a full scan


def test_xor_subset_out_of_range_rejected():
    database = make_database(8)
    with pytest.raises(ProtocolError):
        database.xor_subset({99})


# ---------------------------------------------------------------------------
# Retrieval correctness
# ---------------------------------------------------------------------------

def test_every_block_retrievable():
    server_a, server_b, client, database = make_stack(16)
    for index in range(16):
        assert client.retrieve(index, server_a, server_b) == \
            database.block(index)


def test_retrieval_index_validated():
    _, _, client, _ = make_stack(4)
    with pytest.raises(ProtocolError):
        client.build_query(4)


# ---------------------------------------------------------------------------
# Privacy
# ---------------------------------------------------------------------------

def test_single_server_view_is_index_independent():
    """Each server's subset has ~uniform marginal inclusion per block,
    whatever index is retrieved: a lone server learns nothing."""
    n = 12
    rng = random.Random(3)
    inclusion = [0] * n
    rounds = 400
    client = PirClient(n, rng=rng)
    for r in range(rounds):
        subset_a, _ = client.build_query(r % n)
        for i in subset_a:
            inclusion[i] += 1
    for count in inclusion:
        assert 0.35 * rounds < count < 0.65 * rounds


def test_subsets_differ_in_exactly_the_target():
    _, _, client, _ = make_stack(10)
    for index in range(10):
        subset_a, subset_b = client.build_query(index)
        assert set(subset_a) ^ set(subset_b) == {index}


def test_collusion_reveals_the_index():
    server_a, server_b, client, _ = make_stack(10)
    client.retrieve(7, server_a, server_b)
    leaked = collude(server_a.observations[-1], server_b.observations[-1])
    assert leaked == 7


def test_collude_rejects_mismatched_observations():
    server_a, server_b, client, _ = make_stack(10)
    client.retrieve(1, server_a, server_b)
    client.retrieve(2, server_a, server_b)
    with pytest.raises(ProtocolError):
        collude(server_a.observations[0], server_b.observations[1])


# ---------------------------------------------------------------------------
# Costs
# ---------------------------------------------------------------------------

def test_communication_accounting():
    server_a, server_b, client, database = make_stack(16)
    client.retrieve(3, server_a, server_b)
    assert client.bytes_downloaded == 2 * database.block_size
    assert client.bytes_uploaded == 2 * ((16 + 7) // 8)


def test_server_work_scales_with_database():
    for n in (8, 64):
        server_a, server_b, client, _ = make_stack(n)
        client.retrieve(0, server_a, server_b)
        assert server_a.blocks_scanned_total == n
        assert server_b.blocks_scanned_total == n
