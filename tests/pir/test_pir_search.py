"""The PIR-based private search engine."""

import random

import pytest

from repro.errors import SearchError
from repro.pir.search import PirSearchService, PirWebSearchClient
from repro.search.corpus import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def service():
    documents = CorpusGenerator(
        CorpusConfig(docs_per_topic=8), seed=4
    ).generate()
    return PirSearchService(documents, block_size=2048)


def client_for(service):
    return PirWebSearchClient(service, rng=random.Random(9))


def test_search_returns_relevant_documents(service):
    client = client_for(service)
    results = client.search("hotel flight rome", limit=5)
    assert results
    assert any("travel" in r.url for r in results)


def test_results_ranked_and_capped(service):
    client = client_for(service)
    results = client.search("hotel", limit=5)
    assert len(results) <= 5
    assert [r.rank for r in results] == list(range(1, len(results) + 1))
    assert all(results[i].score >= results[i + 1].score
               for i in range(len(results) - 1))


def test_servers_never_see_the_query(service):
    client = client_for(service)
    before = len(service.server_a.observations)
    client.search("secret illness query diabetes", limit=3)
    # What reached the servers: only random-looking index subsets.
    for observation in service.server_a.observations[before:]:
        assert isinstance(observation.subset, frozenset)
    # The term never appears anywhere in the server-visible state.
    assert all(
        not hasattr(observation, "query")
        for observation in service.server_a.observations
    )


def test_stopword_query_returns_empty(service):
    assert client_for(service).search("the of and") == []


def test_unknown_terms_return_empty(service):
    assert client_for(service).search("zzzunknownterm") == []


def test_per_query_server_cost_is_full_scan(service):
    client = client_for(service)
    before = service.server_a.blocks_scanned_total
    client.search("hotel", limit=3)
    scanned = service.server_a.blocks_scanned_total - before
    assert scanned == 3 * service.n_blocks  # 3 retrievals × full DB scan


def test_empty_corpus_rejected():
    with pytest.raises(SearchError):
        PirSearchService([])
