"""nDCG rank-aware accuracy metric."""

import math

import pytest

from repro.errors import ExperimentError
from repro.metrics.ranking_quality import dcg, ndcg
from repro.search.documents import SearchResult


def result(url, rank=1):
    return SearchResult(rank=rank, url=url, title="t", snippet="s", score=1.0)


def page(*urls):
    return [result(url, rank=i + 1) for i, url in enumerate(urls)]


REFERENCE = page("http://a.example.com", "http://b.example.com",
                 "http://c.example.com")


def test_identical_list_scores_one():
    assert ndcg(REFERENCE, REFERENCE) == pytest.approx(1.0)


def test_empty_system_scores_zero():
    assert ndcg(REFERENCE, []) == 0.0


def test_both_empty_scores_one():
    assert ndcg([], []) == 1.0


def test_disjoint_lists_score_zero():
    other = page("http://x.example.com", "http://y.example.com")
    assert ndcg(REFERENCE, other) == 0.0


def test_reordering_penalised():
    reversed_page = page("http://c.example.com", "http://b.example.com",
                         "http://a.example.com")
    score = ndcg(REFERENCE, reversed_page)
    assert 0.0 < score < 1.0


def test_missing_tail_penalised_less_than_missing_head():
    no_tail = page("http://a.example.com", "http://b.example.com")
    no_head = page("http://b.example.com", "http://c.example.com")
    assert ndcg(REFERENCE, no_tail) > ndcg(REFERENCE, no_head)


def test_depth_truncates():
    long_system = page(
        "http://a.example.com", "http://x.example.com",
        "http://b.example.com", "http://c.example.com",
    )
    shallow = ndcg(REFERENCE, long_system, depth=2)
    deep = ndcg(REFERENCE, long_system, depth=4)
    assert shallow != deep


def test_tracking_urls_normalised():
    tracked = [
        SearchResult(
            rank=1,
            url="http://engine.example.com/redirect?target=http://a.example.com",
            title="t", snippet="s", score=1.0,
        )
    ]
    assert ndcg(page("http://a.example.com"), tracked) == pytest.approx(1.0)


def test_dcg_values():
    assert dcg([3, 2, 1]) == pytest.approx(
        3 / math.log2(2) + 2 / math.log2(3) + 1 / math.log2(4)
    )
    assert dcg([]) == 0.0


def test_depth_validated():
    with pytest.raises(ExperimentError):
        ndcg(REFERENCE, REFERENCE, depth=0)
