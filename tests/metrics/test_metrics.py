"""Evaluation metrics: precision/recall, rates, distribution helpers."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.accuracy import precision_recall, result_url_set
from repro.metrics.distributions import ccdf_points, cdf_points
from repro.metrics.privacy import protection_level
from repro.search.documents import SearchResult


def result(url):
    return SearchResult(rank=1, url=url, title="t", snippet="s", score=1.0)


def test_precision_recall_perfect():
    page = [result("http://a.example.com"), result("http://b.example.com")]
    assert precision_recall(page, page) == (1.0, 1.0)


def test_precision_recall_partial():
    reference = [result("http://a.example.com"), result("http://b.example.com")]
    system = [result("http://a.example.com"), result("http://c.example.com")]
    precision, recall = precision_recall(reference, system)
    assert precision == 0.5
    assert recall == 0.5


def test_precision_recall_empty_system():
    reference = [result("http://a.example.com")]
    assert precision_recall(reference, []) == (1.0, 0.0)


def test_precision_recall_empty_reference():
    system = [result("http://a.example.com")]
    assert precision_recall([], system) == (0.0, 1.0)


def test_precision_recall_both_empty():
    assert precision_recall([], []) == (1.0, 1.0)


def test_url_set_strips_tracking():
    tracked = result(
        "http://engine.example.com/redirect?target=http://real.example.com"
    )
    plain = result("http://real.example.com")
    assert result_url_set([tracked]) == result_url_set([plain])


def test_protection_level():
    assert protection_level(0.0) == 1.0
    assert protection_level(0.4) == pytest.approx(0.6)
    with pytest.raises(ExperimentError):
        protection_level(1.5)


def test_cdf_points():
    points = cdf_points([3, 1, 2], points=10)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    assert xs == sorted(xs)
    assert ys[-1] == 1.0
    with pytest.raises(ExperimentError):
        cdf_points([])


def test_ccdf_points():
    values = [0.1, 0.5, 0.9]
    points = ccdf_points(values, [0.0, 0.5, 1.0])
    assert points[0] == (0.0, 1.0)
    assert points[1] == (0.5, pytest.approx(2 / 3))
    assert points[2] == (1.0, 0.0)
    with pytest.raises(ExperimentError):
        ccdf_points([], [0.5])
