"""Server lifecycle edges: binding, idle kick, shedding, drain."""

from __future__ import annotations

import socket
import threading

import pytest

from _helpers import make_client, make_deployment, raw_connect
from repro.core.retry import RetryPolicy
from repro.errors import ProtocolError, RetryExhaustedError, ServerBusyError
from repro.net.clock import VirtualClock
from repro.netserve import wire
from repro.netserve.server import XSearchServer
from repro.obs import MetricsRegistry


class GatedEngine:
    """An engine whose exchanges park until the test opens the gate."""

    def __init__(self, engine):
        self._engine = engine
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()

    def _pause(self):
        self.entered.set()
        assert self.gate.wait(timeout=10), "engine gate never opened"

    def search(self, query, limit):
        self._pause()
        return self._engine.search(query, limit)

    def search_or(self, subqueries, limit):
        self._pause()
        return self._engine.search_or(subqueries, limit)

    def __getattr__(self, name):
        return getattr(self._engine, name)


def _hello(sock):
    sock.sendall(wire.encode_frame(wire.T_HELLO, wire.encode_hello("raw")))
    return wire.read_frame(sock)


# ----------------------------------------------------------------------
# Binding and the basic handshake
# ----------------------------------------------------------------------
def test_port_zero_binds_ephemeral(served):
    _deployment, server = served
    host, port = server.address
    assert host == "127.0.0.1"
    assert port != 0


def test_address_before_start_raises():
    with make_deployment() as deployment:
        server = XSearchServer(deployment)
        with pytest.raises(ProtocolError):
            server.address
        # Closing an unstarted server is a no-op, and it cannot then start.
        server.close()
        with pytest.raises(ProtocolError):
            server.start()


def test_hello_welcome_and_ping(served):
    _deployment, server = served
    with raw_connect(server) as sock:
        sock.settimeout(5.0)
        frame = _hello(sock)
        assert frame.ftype == wire.T_WELCOME
        info = wire.decode_welcome(frame.payload)
        assert info["max_frame_bytes"] == server.max_frame_bytes
        sock.sendall(wire.encode_frame(wire.T_PING, b"echo me"))
        frame = wire.read_frame(sock)
        assert (frame.ftype, frame.payload) == (wire.T_PONG, b"echo me")


def test_server_only_frame_from_client_is_rejected(served):
    _deployment, server = served
    with raw_connect(server) as sock:
        sock.settimeout(5.0)
        sock.sendall(wire.encode_frame(wire.T_REPLY, wire.encode_reply([])))
        frame = wire.read_frame(sock)
        assert frame.ftype == wire.T_ERROR
        assert isinstance(wire.decode_error(frame.payload), ProtocolError)
        # Protocol-level complaint, but the connection survives.
        sock.sendall(wire.encode_frame(wire.T_PING, b"x"))
        assert wire.read_frame(sock).ftype == wire.T_PONG


def test_malformed_framing_gets_error_then_goodbye(served):
    _deployment, server = served
    with raw_connect(server) as sock:
        sock.settimeout(5.0)
        sock.sendall(b"GARBAGEGARB")  # 11 bytes of not-a-header
        frame = wire.read_frame(sock)
        assert frame.ftype == wire.T_ERROR
        frame = wire.read_frame(sock)
        assert frame.ftype == wire.T_GOODBYE
        assert wire.decode_goodbye(frame.payload) == "protocol"
        assert wire.read_frame(sock) is None  # clean close


# ----------------------------------------------------------------------
# Idle timeout
# ----------------------------------------------------------------------
def test_idle_connection_is_dismissed():
    with make_deployment() as deployment:
        with XSearchServer(deployment, idle_timeout=0.2) as server:
            with raw_connect(server) as sock:
                sock.settimeout(5.0)
                assert _hello(sock).ftype == wire.T_WELCOME
                frame = wire.read_frame(sock)  # sit idle; server kicks us
                assert frame.ftype == wire.T_GOODBYE
                assert wire.decode_goodbye(frame.payload) == "idle"
                assert wire.read_frame(sock) is None


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_connection_cap_sheds_with_busy():
    registry = MetricsRegistry()
    with make_deployment() as deployment:
        with XSearchServer(deployment, max_connections=1,
                           idle_timeout=None, retry_after=0.125,
                           registry=registry) as server:
            with raw_connect(server) as first:
                first.settimeout(5.0)
                assert _hello(first).ftype == wire.T_WELCOME
                with raw_connect(server) as second:
                    second.settimeout(5.0)
                    frame = wire.read_frame(second)
                    assert frame.ftype == wire.T_BUSY
                    assert wire.decode_busy(frame.payload) == 0.125
                    frame = wire.read_frame(second)
                    assert frame.ftype == wire.T_GOODBYE
                    assert wire.decode_goodbye(frame.payload) == "busy"
                    assert wire.read_frame(second) is None
                # The admitted connection is unharmed.
                first.sendall(wire.encode_frame(wire.T_PING, b"ok"))
                assert wire.read_frame(first).ftype == wire.T_PONG
            assert registry.counter("server.sheds").value >= 1


def test_inflight_cap_sheds_request_with_busy(small_engine):
    engine = GatedEngine(small_engine)
    with make_deployment(engine=engine) as deployment:
        with XSearchServer(deployment, max_inflight=1,
                           idle_timeout=None) as server:
            blocked = make_client(deployment, server, user_id="blocked")
            rebuffed = make_client(deployment, server, user_id="rebuffed",
                                   busy_retries=0)
            try:
                engine.gate.clear()
                worker = threading.Thread(
                    target=blocked.search, args=("cheap hotel rome",),
                    daemon=True,
                )
                worker.start()
                assert engine.entered.wait(timeout=10)
                # The admission slot is held; a second request is shed
                # with a typed busy error carrying the hint.  Each shed
                # burns a channel nonce, so the broker heals between
                # attempts and finally gives the session up entirely.
                with pytest.raises(RetryExhaustedError) as info:
                    rebuffed.search("nfl playoffs")
                cause = info.value.last_cause
                assert isinstance(cause, ServerBusyError)
                assert cause.retry_after == server.retry_after
                assert cause.retryable
                assert not rebuffed.broker.is_connected
            finally:
                engine.gate.set()
            worker.join(timeout=10)
            assert not worker.is_alive()
            # Capacity freed: the rebuffed client succeeds on a new call.
            assert rebuffed.search("nfl playoffs", limit=3)
            blocked.close()
            rebuffed.close()


def test_reconnect_after_busy_honours_retry_after_on_virtual_clock():
    """A BUSY at connect time is retried after exactly the server's
    hint — driven on a virtual clock, so no real sleeping happens."""
    with make_deployment() as deployment:
        with XSearchServer(deployment, max_connections=1,
                           idle_timeout=None, retry_after=0.25) as server:
            hog = raw_connect(server)
            hog.settimeout(5.0)
            assert _hello(hog).ftype == wire.T_WELCOME
            clock = VirtualClock()
            with pytest.raises(RetryExhaustedError) as info:
                make_client(deployment, server, user_id="patient",
                            clock=clock, busy_retries=2,
                            retry_policy=RetryPolicy(max_attempts=1))
            # Three attempts (initial + 2 retries), each rebuffed; the
            # two between-attempt waits honour the server's hint.
            assert clock.sleeps == [0.25, 0.25]
            cause = info.value.last_cause
            assert isinstance(cause, ServerBusyError)
            assert cause.retry_after == 0.25
            # The hog leaves; the same dance now ends in admission.
            hog.close()
            client = make_client(deployment, server, user_id="patient",
                                 clock=clock, busy_retries=2)
            assert client.search("cheap hotel rome", limit=3)
            client.close()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_and_flags_reply(small_engine):
    engine = GatedEngine(small_engine)
    with make_deployment(engine=engine) as deployment:
        server = XSearchServer(deployment, idle_timeout=None).start()
        client = make_client(deployment, server, user_id="drained")
        result_box = {}

        def do_search():
            result_box["results"] = client.search("cheap hotel rome")

        engine.gate.clear()
        worker = threading.Thread(target=do_search, daemon=True)
        worker.start()
        assert engine.entered.wait(timeout=10)
        closer = threading.Thread(target=server.close, daemon=True)
        closer.start()
        engine.gate.set()
        worker.join(timeout=10)
        closer.join(timeout=10)
        assert not worker.is_alive() and not closer.is_alive()
        # The in-flight request completed — degraded-flagged on the
        # wire, but a full, valid reply to the caller.
        assert result_box["results"]
        assert client.transport.drain_notices == 1
        # The listener is gone: new connections are refused outright.
        with pytest.raises(OSError):
            socket.create_connection(server.address, timeout=1.0)
        client.close()


def test_server_close_is_idempotent_and_concurrent():
    with make_deployment() as deployment:
        server = XSearchServer(deployment, idle_timeout=None).start()
        closers = [threading.Thread(target=server.close, daemon=True)
                   for _ in range(3)]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in closers)
        server.close()  # and once more, after the fact
