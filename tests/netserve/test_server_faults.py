"""Socket-level fault injection: the client heals over real frames."""

from __future__ import annotations

import pytest

from _helpers import make_client, make_deployment
from repro.core.retry import RetryPolicy
from repro.faults import (
    KIND_DROP,
    KIND_GARBLE,
    KIND_REFUSE,
    KIND_SLOWLORIS,
    FaultPlan,
    SITE_SERVER_ACCEPT,
    SITE_SERVER_RECV,
    SITE_SERVER_SEND,
)
from repro.net.clock import VirtualClock
from repro.netserve.server import XSearchServer
from repro.obs import MetricsRegistry


@pytest.fixture()
def faulted():
    """A served deployment with an (initially empty) fault plan."""
    plan = FaultPlan(seed=5)
    registry = MetricsRegistry()
    with make_deployment() as deployment:
        with XSearchServer(deployment, idle_timeout=None,
                           fault_plan=plan, registry=registry) as server:
            yield deployment, server, plan, registry


def test_accept_refuse_is_survived_by_connect_retry(faulted):
    deployment, server, plan, registry = faulted
    plan.trigger(SITE_SERVER_ACCEPT, KIND_REFUSE)
    client = make_client(
        deployment, server, user_id="refused-once",
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
    )
    try:
        assert client.search("cheap hotel rome", limit=3)
        assert registry.counter("server.faults").value == 1
    finally:
        client.close()


def test_send_drop_triggers_broker_heal(faulted):
    deployment, server, plan, _registry = faulted
    client = make_client(deployment, server, user_id="dropped")
    try:
        assert client.search("cheap hotel rome", limit=3)
        # The next server send vanishes and the connection dies with it;
        # the broker re-attests over a fresh connection and re-issues.
        plan.trigger(SITE_SERVER_SEND, KIND_DROP)
        assert client.search("nfl playoffs", limit=3)
        assert client.broker.reconnects == 1
    finally:
        client.close()


def test_send_garble_triggers_broker_heal(faulted):
    deployment, server, plan, _registry = faulted
    client = make_client(deployment, server, user_id="garbled")
    try:
        assert client.search("cheap hotel rome", limit=3)
        plan.trigger(SITE_SERVER_SEND, KIND_GARBLE)
        assert client.search("nfl playoffs", limit=3)
        assert client.broker.reconnects == 1
    finally:
        client.close()


def test_recv_drop_triggers_broker_heal(faulted):
    deployment, server, plan, _registry = faulted
    client = make_client(deployment, server, user_id="recv-dropped")
    try:
        assert client.search("cheap hotel rome", limit=3)
        # The server reads the next frame and abandons the connection
        # without answering: the client sees EOF and heals.
        plan.trigger(SITE_SERVER_RECV, KIND_DROP)
        assert client.search("nfl playoffs", limit=3)
        assert client.broker.reconnects == 1
    finally:
        client.close()


def test_slowloris_send_trickles_but_delivers():
    plan = FaultPlan(seed=5)
    clock = VirtualClock()
    with make_deployment() as deployment:
        with XSearchServer(deployment, idle_timeout=None,
                           fault_plan=plan, clock=clock) as server:
            client = make_client(deployment, server, user_id="patient")
            try:
                plan.trigger(SITE_SERVER_SEND, KIND_SLOWLORIS)
                assert client.search("cheap hotel rome", limit=3)
                # The reply really did trickle out one byte at a time —
                # on the injected virtual clock, so no wall time burned.
                assert len(clock.sleeps) > 100
            finally:
                client.close()
