"""The frame codec: round-trips, validation, incremental reading."""

from __future__ import annotations

import struct

import pytest

from repro import errors
from repro.errors import (
    AttestationError,
    EnclaveLostError,
    ProtocolError,
    ReproError,
    ServerBusyError,
    TransientError,
)
from repro.netserve import wire


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_round_trip():
    data = wire.encode_frame(wire.T_SEARCH, b"payload bytes")
    ftype, length = wire.decode_header(data[:wire.HEADER_BYTES])
    assert ftype == wire.T_SEARCH
    assert length == len(b"payload bytes")
    assert data[wire.HEADER_BYTES:] == b"payload bytes"


def test_empty_payload_frame():
    data = wire.encode_frame(wire.T_PING)
    assert len(data) == wire.HEADER_BYTES
    assert wire.decode_header(data) == (wire.T_PING, 0)


def test_encode_rejects_unknown_type_and_oversize():
    with pytest.raises(ProtocolError):
        wire.encode_frame(99, b"")
    with pytest.raises(ProtocolError):
        wire.encode_frame(wire.T_PING, b"x" * 2048)  # over the PING cap
    with pytest.raises(ProtocolError):
        wire.encode_frame(wire.T_REPLY, b"x" * (wire.MAX_FRAME_BYTES + 1))


@pytest.mark.parametrize("mutate, note", [
    (lambda h: b"NOPE" + h[4:], "bad magic"),
    (lambda h: h[:4] + b"\x7f" + h[5:], "bad version"),
    (lambda h: h[:5] + b"\x63" + h[6:], "unknown type"),
    (lambda h: h[:6] + b"\x01" + h[7:], "reserved flags set"),
    (lambda h: h[:7] + struct.pack(">I", wire.MAX_FRAME_BYTES + 1),
     "length over cap"),
    (lambda h: h[:-1], "truncated header"),
])
def test_decode_header_rejects_malformed(mutate, note):
    good = wire.encode_frame(wire.T_REPLY, b"abc")[:wire.HEADER_BYTES]
    with pytest.raises(ProtocolError):
        wire.decode_header(mutate(good))


def test_per_type_caps_are_tighter_than_frame_ceiling():
    assert wire.payload_cap(wire.T_PING) == 1024
    assert wire.payload_cap(wire.T_SEARCH) == wire.MAX_FRAME_BYTES
    # A smaller negotiated ceiling wins over the per-type cap.
    assert wire.payload_cap(wire.T_SEARCH, 4096) == 4096
    header = wire._HEADER.pack(
        wire.MAGIC, wire.WIRE_VERSION, wire.T_PING, 0, 4096
    )
    with pytest.raises(ProtocolError):
        wire.decode_header(header)


def test_frame_reader_incremental():
    reader = wire.FrameReader()
    stream = (wire.encode_frame(wire.T_PING, b"a")
              + wire.encode_frame(wire.T_PONG, b"bb"))
    frames = []
    for index in range(len(stream)):  # one byte at a time
        frames.extend(reader.feed(stream[index:index + 1]))
    assert [(f.ftype, f.payload) for f in frames] == [
        (wire.T_PING, b"a"), (wire.T_PONG, b"bb"),
    ]
    assert reader.pending_bytes == 0


def test_frame_reader_multiple_frames_in_one_feed():
    reader = wire.FrameReader()
    stream = b"".join(
        wire.encode_frame(wire.T_PING, bytes([i])) for i in range(5)
    )
    frames = reader.feed(stream)
    assert len(frames) == 5


def test_frame_reader_poisons_on_bad_header():
    reader = wire.FrameReader()
    with pytest.raises(ProtocolError):
        reader.feed(b"GARBAGEGARB")
    # Poisoned for good: even valid bytes are refused afterwards.
    with pytest.raises(ProtocolError):
        reader.feed(wire.encode_frame(wire.T_PING, b""))


# ----------------------------------------------------------------------
# Typed payload codecs
# ----------------------------------------------------------------------
def test_hello_welcome_round_trip():
    assert wire.decode_hello(wire.encode_hello("someone")) == "someone"
    info = wire.decode_welcome(wire.encode_welcome(server_name="srv"))
    assert info["server"] == "srv"
    assert info["protocol"] == wire.WIRE_VERSION


def test_welcome_rejects_version_mismatch():
    payload = b'{"server": "s", "protocol": 99, "max_frame_bytes": 1024}'
    with pytest.raises(ProtocolError):
        wire.decode_welcome(payload)


def test_attest_round_trip():
    assert wire.decode_attest(wire.encode_attest("sid-1")) == "sid-1"
    with pytest.raises(ProtocolError):
        wire.decode_attest(wire.encode_attest(""))
    with pytest.raises(ProtocolError):
        wire.decode_attest(wire.encode_attest("sid-1") + b"trailing")


def test_session_round_trip():
    payload = wire.encode_session("sid-2", b"\x00\x01hello")
    assert wire.decode_session(payload) == ("sid-2", b"\x00\x01hello")


def test_search_round_trip():
    payload = wire.encode_search("sid-3", b"sealed-record")
    assert wire.decode_search(payload) == ("sid-3", b"sealed-record")


def test_search_batch_round_trip():
    items = [("sid-a", b"r1"), ("sid-b", b"r2"), ("sid-a", b"r3")]
    assert wire.decode_search_batch(wire.encode_search_batch(items)) == items


def test_search_batch_rejects_empty_and_truncated():
    with pytest.raises(ProtocolError):
        wire.encode_search_batch([])
    payload = wire.encode_search_batch([("sid", b"record")])
    with pytest.raises(ProtocolError):
        wire.decode_search_batch(payload[:-1])
    with pytest.raises(ProtocolError):
        wire.decode_search_batch(payload + b"extra")


def test_reply_round_trip():
    records = [b"r1", b"", b"r3"]
    assert wire.decode_reply(wire.encode_reply(records)) == records
    assert wire.decode_reply(wire.encode_reply([])) == []


def test_busy_round_trip():
    assert wire.decode_busy(wire.encode_busy(0.25)) == 0.25
    with pytest.raises(ProtocolError):
        wire.decode_busy(b'{"retry_after": -1}')
    with pytest.raises(ProtocolError):
        wire.decode_busy(b'{"retry_after": "soon"}')


def test_goodbye_round_trip():
    assert wire.decode_goodbye(wire.encode_goodbye("drain")) == "drain"
    with pytest.raises(ProtocolError):
        wire.decode_goodbye(b"not json")


def test_attest_ok_round_trip(served):
    deployment, _server = served
    channel = deployment.frontend
    if hasattr(channel, "for_session"):
        channel = channel.for_session("wire-attest-ok")
    verdict = channel.attestation_evidence()
    public = channel.channel_public()
    payload = wire.encode_attest_ok(verdict, public)
    decoded_verdict, decoded_public = wire.decode_attest_ok(payload)
    assert decoded_public == bytes(public)
    assert decoded_verdict.status == verdict.status
    assert decoded_verdict.quote.measurement == verdict.quote.measurement
    assert decoded_verdict.signature == verdict.signature


def test_attest_ok_rejects_wrong_measurement_width():
    payload = (b'{"quote": {"platform_id": "00", "measurement": "aabb", '
               b'"report_data": "00", "signature": "00"}, '
               b'"status": "OK", "report_bytes": "00", "signature": "00", '
               b'"channel_public": "00"}')
    with pytest.raises(ProtocolError):
        wire.decode_attest_ok(payload)


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------
def test_error_round_trip_preserves_type():
    for exc in (AttestationError("verdict mismatch"),
                ProtocolError("bad frame"),
                EnclaveLostError("it fell over"),
                ServerBusyError("full")):
        rebuilt = wire.decode_error(wire.encode_error(exc))
        assert type(rebuilt) is type(exc)
        assert rebuilt.retryable == exc.retryable


def test_error_never_leaks_non_taxonomy_detail():
    payload = wire.encode_error(ValueError("secret internal detail"))
    rebuilt = wire.decode_error(payload)
    assert isinstance(rebuilt, ProtocolError)
    assert "secret" not in str(rebuilt)


def test_error_unknown_name_degrades_to_generic():
    rebuilt = wire.decode_error(
        b'{"error": "FutureError", "message": "m", "retryable": true}'
    )
    assert isinstance(rebuilt, TransientError)
    assert "FutureError" in str(rebuilt)
    rebuilt = wire.decode_error(
        b'{"error": "FutureError", "message": "m", "retryable": false}'
    )
    assert type(rebuilt) is ReproError


def test_error_structured_constructor_falls_back():
    exc = errors.RetryExhaustedError(3, ProtocolError("x"))
    rebuilt = wire.decode_error(wire.encode_error(exc))
    assert isinstance(rebuilt, ReproError)
    assert "RetryExhaustedError" in str(rebuilt) or isinstance(
        rebuilt, errors.RetryExhaustedError
    )


def test_error_vocabulary_covers_the_taxonomy():
    assert "ConnectionLostError" in wire._ERROR_TYPES
    assert "ServerBusyError" in wire._ERROR_TYPES
    assert "AuthenticationError" in wire._ERROR_TYPES
