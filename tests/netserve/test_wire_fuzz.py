"""Protocol robustness: seeded malformed-frame fuzzing.

Two layers, same seeded corpus:

* codec level — every mutation either decodes or raises
  :class:`~repro.errors.ProtocolError`; never ``struct.error`` /
  ``IndexError`` / ``KeyError`` / ``UnicodeDecodeError``.
* server level — a live server fed the same garbage answers with a
  typed ``ERROR`` frame or closes the connection cleanly; it never
  crashes, never hangs, and still serves a well-behaved client
  afterwards.
"""

from __future__ import annotations

import random
import socket
import struct

import pytest

from repro.errors import ProtocolError
from repro.netserve import wire

from _helpers import make_client, raw_connect

SEED = 20260808
#: Total malformed inputs across the suite (the issue floor is 200).
N_HEADER_CASES = 120
N_PAYLOAD_CASES = 160
N_SOCKET_CASES = 60


def _valid_frames(rng):
    """A pool of well-formed frames to mutate."""
    frames = [
        wire.encode_frame(wire.T_HELLO, wire.encode_hello("fuzz")),
        wire.encode_frame(wire.T_PING, rng.randbytes(8)),
        wire.encode_frame(wire.T_ATTEST, wire.encode_attest("sid-f")),
        wire.encode_frame(
            wire.T_SESSION, wire.encode_session("sid-f", rng.randbytes(40))
        ),
        wire.encode_frame(
            wire.T_SEARCH, wire.encode_search("sid-f", rng.randbytes(64))
        ),
        wire.encode_frame(
            wire.T_SEARCH_BATCH,
            wire.encode_search_batch(
                [("sid-f", rng.randbytes(16)) for _ in range(3)]
            ),
        ),
        wire.encode_frame(wire.T_GOODBYE, wire.encode_goodbye("fuzz")),
    ]
    return frames


def _mutate(rng, blob: bytes) -> bytes:
    """One seeded mutation of a byte string."""
    blob = bytearray(blob)
    choice = rng.randrange(6)
    if choice == 0 and blob:  # truncate
        del blob[rng.randrange(len(blob)):]
    elif choice == 1:  # bit flip
        if blob:
            index = rng.randrange(len(blob))
            blob[index] ^= 1 << rng.randrange(8)
    elif choice == 2:  # corrupt the header length field
        if len(blob) >= wire.HEADER_BYTES:
            blob[7:11] = struct.pack(">I", rng.randrange(1 << 32))
    elif choice == 3:  # wrong magic / version / type / flags byte
        if len(blob) >= wire.HEADER_BYTES:
            index = rng.randrange(7)
            blob[index] = rng.randrange(256)
    elif choice == 4:  # splice random garbage into the payload
        insert = rng.randbytes(rng.randrange(1, 32))
        index = rng.randrange(len(blob) + 1)
        blob[index:index] = insert
    else:  # pure noise
        blob = bytearray(rng.randbytes(rng.randrange(1, 128)))
    return bytes(blob)


def _malformed_corpus(rng, count):
    pool = _valid_frames(rng)
    corpus = []
    while len(corpus) < count:
        blob = _mutate(rng, rng.choice(pool))
        if rng.random() < 0.3:  # stack mutations for deeper damage
            blob = _mutate(rng, blob)
        corpus.append(blob)
    return corpus


# ----------------------------------------------------------------------
# Codec level
# ----------------------------------------------------------------------
def test_fuzz_frame_reader_total():
    """Every mutation decodes or raises ProtocolError — nothing else."""
    rng = random.Random(SEED)
    rejected = 0
    for blob in _malformed_corpus(rng, N_HEADER_CASES):
        reader = wire.FrameReader()
        try:
            reader.feed(blob)
        except ProtocolError:
            rejected += 1
    assert rejected > N_HEADER_CASES // 4  # the corpus does real damage


def test_fuzz_payload_decoders_total():
    """Typed decoders are total functions over arbitrary bytes."""
    rng = random.Random(SEED + 1)
    decoders = (
        wire.decode_hello, wire.decode_welcome, wire.decode_attest,
        wire.decode_attest_ok, wire.decode_session, wire.decode_search,
        wire.decode_search_batch, wire.decode_reply, wire.decode_busy,
        wire.decode_goodbye, wire.decode_error,
    )
    rejections = 0
    for _ in range(N_PAYLOAD_CASES):
        blob = rng.randbytes(rng.randrange(0, 96))
        for decode in decoders:
            try:
                decode(blob)
            except ProtocolError:
                rejections += 1
    assert rejections > 0


# ----------------------------------------------------------------------
# Server level
# ----------------------------------------------------------------------
def _drain_until_close(sock):
    """Read server frames until it closes; fail the test on a hang."""
    sock.settimeout(5.0)
    frames = []
    while True:
        try:
            frame = wire.read_frame(sock)
        except (ProtocolError, OSError):
            break
        if frame is None:
            break
        frames.append(frame)
        if len(frames) > 16:  # a confused server babbling, not serving
            pytest.fail("server kept streaming frames at a fuzzer")
    return frames


def test_fuzz_live_server_survives_framing_garbage(served):
    """Header-level garbage: the server rejects and closes, every time."""
    _deployment, server = served
    rng = random.Random(SEED + 2)
    for blob in _malformed_corpus(rng, N_SOCKET_CASES):
        with raw_connect(server) as sock:
            try:
                sock.sendall(blob)
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                continue  # server already slammed the door; that's a pass
            frames = _drain_until_close(sock)
            for frame in frames:
                assert frame.ftype in (wire.T_ERROR, wire.T_GOODBYE,
                                       wire.T_WELCOME, wire.T_PONG)


def test_fuzz_live_server_payload_garbage_keeps_connection(served):
    """Well-framed garbage payloads: typed ERROR, connection survives."""
    _deployment, server = served
    rng = random.Random(SEED + 3)
    with raw_connect(server) as sock:
        sock.settimeout(5.0)
        errors_seen = 0
        for _ in range(140):
            ftype = rng.choice((wire.T_ATTEST, wire.T_SESSION,
                                wire.T_SEARCH, wire.T_SEARCH_BATCH,
                                wire.T_HELLO, wire.T_WELCOME,
                                wire.T_REPLY, wire.T_ERROR, wire.T_BUSY))
            payload = rng.randbytes(rng.randrange(0, 64))
            cap = wire.payload_cap(ftype)
            sock.sendall(wire.encode_frame(ftype, payload[:cap]))
            frame = wire.read_frame(sock)
            assert frame is not None, "server dropped a well-framed client"
            if frame.ftype == wire.T_ERROR:
                errors_seen += 1
                rebuilt = wire.decode_error(frame.payload)
                assert isinstance(rebuilt, Exception)
        assert errors_seen > 100
        # The same connection still answers honest traffic.
        sock.sendall(wire.encode_frame(wire.T_PING, b"still-there"))
        frame = wire.read_frame(sock)
        assert frame.ftype == wire.T_PONG
        assert frame.payload == b"still-there"


def test_server_serves_honest_client_after_fuzzing(served):
    deployment, server = served
    client = make_client(deployment, server, user_id="post-fuzz")
    try:
        results = client.search("cheap hotel rome", limit=3)
        assert results
    finally:
        client.close()
