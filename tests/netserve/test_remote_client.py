"""RemoteClient end-to-end: same answers, same errors, over the wire."""

from __future__ import annotations

import pytest

from _helpers import make_client
from repro.errors import AuthenticationError, ProtocolError, ReproError
from repro.netserve import wire


def test_search_end_to_end(remote):
    results = remote.search("cheap hotel rome", limit=5)
    assert results
    assert remote.queries_sent == 1
    assert remote.last_degraded is False


def test_remote_matches_in_process_results(served):
    deployment, server = served
    local = deployment.client(user_id="local-twin")
    over_wire = make_client(deployment, server, user_id="remote-twin")
    try:
        query = "nba standings tonight"
        assert over_wire.search(query, limit=5) == local.search(
            query, limit=5
        )
    finally:
        over_wire.close()


def test_search_batch_end_to_end(remote):
    queries = ["cheap hotel rome", "nfl playoffs", "diabetes symptoms"]
    batches = remote.search_batch(queries, limit=3)
    assert len(batches) == len(queries)
    assert all(isinstance(results, list) for results in batches)


def test_empty_query_rejected_client_side(remote):
    with pytest.raises(ProtocolError):
        remote.search("   ")


def test_ping_round_trips(remote):
    assert remote.ping(b"are you there") == b"are you there"


def test_server_side_error_is_rebuilt_typed(served, remote):
    """A garbage record reaches the enclave, fails authentication, and
    the typed error crosses the wire intact — connection kept."""
    remote.search("cheap hotel rome")  # establish the session
    channel = remote.broker._proxy
    with pytest.raises(ReproError) as info:
        channel.request(channel.session_id, b"not an AEAD record")
    assert isinstance(info.value, (AuthenticationError, ProtocolError))
    # The client-held channel desynchronised nothing (the record never
    # decrypted), and the TCP connection survived the typed error.
    assert remote.ping(b"alive") == b"alive"


def test_transport_counts_are_observable(remote):
    remote.search("cheap hotel rome")
    assert remote.transport.server_info["protocol"] == wire.WIRE_VERSION
    assert remote.transport.busy_rebuffs == 0
    assert remote.transport.drain_notices == 0
    assert remote.broker.reconnects == 0


def test_context_manager_closes(served):
    deployment, server = served
    with make_client(deployment, server, user_id="ctx") as client:
        assert client.search("cheap hotel rome", limit=2)
    # Closed: the next call transparently reconnects rather than failing.
    assert client.search("nfl playoffs", limit=2)
    client.close()
