"""Shared netserve fixtures: one live loopback server per module.

Deployment construction (RSA attestation keys, corpus) dominates the
cost, so the served deployment is module-scoped; tests that need their
own lifecycle (drain, idle timeout, shedding) build private servers on
port 0 via the builders in ``_helpers.py``.
"""

from __future__ import annotations

import pytest

from _helpers import make_client, make_deployment
from repro.netserve.server import XSearchServer


@pytest.fixture(scope="module")
def served():
    """``(deployment, server)`` — a live loopback server, no idle kick."""
    with make_deployment() as deployment:
        with XSearchServer(deployment, idle_timeout=None) as server:
            yield deployment, server


@pytest.fixture()
def remote(served):
    deployment, server = served
    client = make_client(deployment, server)
    yield client
    client.close()
