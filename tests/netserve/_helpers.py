"""Builders shared by the netserve test modules."""

from __future__ import annotations

import socket

from repro.core.deployment import DeploymentConfig, XSearchDeployment
from repro.netserve.client import RemoteClient


def make_deployment(engine=None, **overrides):
    params = dict(seed=7, k=2)
    params.update(overrides)
    return XSearchDeployment.create(
        config=DeploymentConfig(**params), engine=engine
    )


def make_client(deployment, server, **kwargs):
    kwargs.setdefault("user_id", "netserve-test")
    return RemoteClient(
        server.address,
        service_public_key=deployment.attestation_service.public_key,
        expected_measurement=deployment.proxy.measurement,
        **kwargs,
    )


def raw_connect(server, timeout=5.0):
    """A bare socket to the server, for protocol-level tests."""
    return socket.create_connection(server.address, timeout=timeout)
