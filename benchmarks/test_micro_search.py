"""Micro-benchmarks of the search-engine substrate."""

import pytest

from repro.search import CorpusConfig, SearchEngine


@pytest.fixture(scope="module")
def engine():
    return SearchEngine.with_synthetic_corpus(seed=2)


def test_engine_single_query(benchmark, engine):
    results = benchmark(engine.search, "cheap hotel rome flight", 20)
    assert results


def test_engine_or_query_k3(benchmark, engine):
    results = benchmark(
        engine.search_or,
        ["cheap hotel rome", "diabetes symptoms", "nfl playoffs",
         "mortgage refinance"],
        20,
    )
    assert results


def test_engine_build(benchmark):
    engine = benchmark.pedantic(
        SearchEngine.with_synthetic_corpus,
        kwargs={"seed": 5, "config": CorpusConfig(docs_per_topic=30)},
        rounds=1,
        iterations=1,
    )
    assert engine.n_documents > 0
