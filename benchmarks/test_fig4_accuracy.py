"""Figure 4 bench: precision/recall of filtered results vs k.

Paper shape: both metrics decrease slowly with k and stay above 0.8 at
k=2 over the first 20 results.
"""

from repro.experiments import fig4_accuracy


def test_fig4_accuracy(benchmark, context):
    result = benchmark.pedantic(
        fig4_accuracy.run,
        args=(context,),
        kwargs={"k_values": (0, 1, 2, 4, 7), "queries_per_k": 30},
        rounds=1,
        iterations=1,
    )
    k2 = result.k_values.index(2)
    assert result.precisions[0] == 1.0 and result.recalls[0] == 1.0
    assert result.precisions[k2] > 0.8
    assert result.recalls[k2] > 0.8
    assert result.precisions[-1] >= 0.6
    print()
    print(fig4_accuracy.format_table(result))
