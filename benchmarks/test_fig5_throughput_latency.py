"""Figure 5 bench: latency vs offered throughput, X-Search / PEAS / Tor.

Paper shape: X-Search sustains ~25k req/s sub-second; PEAS ~1k; Tor ~100.
One order of magnitude between each pair.
"""

from repro.experiments import fig5_throughput_latency


def test_fig5_throughput_latency(benchmark):
    result = benchmark.pedantic(
        fig5_throughput_latency.run,
        kwargs={"duration_seconds": 1.0},
        rounds=1,
        iterations=1,
    )
    assert result.ordering_holds()
    assert result.saturation["X-Search"] >= 20_000
    assert 500 <= result.saturation["PEAS"] <= 2_000
    assert 50 <= result.saturation["Tor"] <= 200
    print()
    print(fig5_throughput_latency.format_table(result))


def test_fig5_extended_with_rac_and_dissent(benchmark):
    """Extension: the robust anonymity systems of §2.1.1 — RAC below Tor,
    Dissent below RAC, as the paper reports qualitatively."""
    result = benchmark.pedantic(
        fig5_throughput_latency.run,
        kwargs={"duration_seconds": 1.0, "include_extended": True},
        rounds=1,
        iterations=1,
    )
    assert result.saturation["Tor"] > result.saturation["RAC"]
    assert result.saturation["RAC"] > result.saturation["Dissent"]
    print()
    for name in ("RAC", "Dissent"):
        print(f"{name}: sub-second up to {result.saturation[name]:,.0f} req/s")
