"""Ablation: Algorithm 2's scoring fields (title + description).

The paper scores each result against each sub-query on both the title and
the description (snippet).  This bench compares the full scorer against
title-only and snippet-only variants on the Figure 4 accuracy task.
"""

import random

from repro.core.filtering import filter_results
from repro.core.history import QueryHistory
from repro.core.obfuscation import obfuscate_query
from repro.metrics.accuracy import precision_recall
from repro.search.documents import SearchResult

K = 3
DEPTH = 20
N_QUERIES = 25


def blank_field(results, field):
    out = []
    for r in results:
        out.append(
            SearchResult(
                rank=r.rank,
                url=r.url,
                title="" if field == "title" else r.title,
                snippet="" if field == "snippet" else r.snippet,
                score=r.score,
            )
        )
    return out


def run_ablation(context):
    engine = context.engine
    texts = context.sample_random_test_texts(N_QUERIES)
    train_texts = context.train_texts
    variants = {"title+snippet": None, "title-only": "snippet",
                "snippet-only": "title"}
    scores = {}
    for name, blanked in variants.items():
        rng = random.Random(31)
        history = QueryHistory(len(train_texts) + N_QUERIES)
        history.extend(train_texts)
        f1_sum = 0.0
        for text in texts:
            reference = engine.search(text, DEPTH)
            obfuscated = obfuscate_query(text, history, K, rng)
            merged = engine.search_or(list(obfuscated.subqueries), DEPTH)
            if blanked is not None:
                merged_view = blank_field(merged, blanked)
            else:
                merged_view = merged
            decisions = filter_results(
                obfuscated.original, obfuscated.fake_queries, merged_view,
                explain=True,
            )
            kept = [
                merged[i] for i, d in enumerate(decisions) if d.kept
            ][:DEPTH]
            precision, recall = precision_recall(reference, kept)
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall else 0.0
            )
            f1_sum += f1
        scores[name] = f1_sum / len(texts)
    return scores


def test_ablation_filtering_fields(benchmark, context):
    scores = benchmark.pedantic(
        run_ablation, args=(context,), rounds=1, iterations=1
    )
    print()
    print("scoring fields    mean F1 vs direct results")
    for name, f1 in scores.items():
        print(f"{name:<16} {f1:>10.3f}")
    # Using both fields is at least as good as either alone.
    assert scores["title+snippet"] >= scores["title-only"] - 0.02
    assert scores["title+snippet"] >= scores["snippet-only"] - 0.02
