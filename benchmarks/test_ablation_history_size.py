"""Ablation: the history window size x (DESIGN.md design-choice bench).

The paper bounds enclave memory by keeping only the last x queries
(§4.3).  This ablation quantifies the trade-off that motivates a large
window: a small window stores few distinct fakes, so obfuscated queries
recycle the same sub-queries and re-identification gets easier, while the
memory footprint (Figure 6's concern) grows linearly with x.
"""

import random

from repro.core.history import QueryHistory
from repro.core.obfuscation import obfuscate_query

WINDOW_SIZES = (50, 500, 5_000)
K = 3


def run_ablation(context):
    pairs = context.sample_test_queries(per_user=1)
    train_texts = context.train_texts
    attack = context.attack
    rows = []
    for window in WINDOW_SIZES:
        rng = random.Random(17)
        history = QueryHistory(window)
        history.extend(train_texts)  # only the last `window` survive
        triples = []
        for user_id, text in pairs:
            obfuscated = obfuscate_query(text, history, K, rng)
            triples.append((user_id, text, list(obfuscated.subqueries)))
        rate = attack.reidentification_rate(triples)
        rows.append((window, rate, history.byte_size))
    return rows


def test_ablation_history_size(benchmark, context):
    rows = benchmark.pedantic(
        run_ablation, args=(context,), rounds=1, iterations=1
    )
    print()
    print("window x   re-identification   history bytes")
    for window, rate, nbytes in rows:
        print(f"{window:>8}   {rate:>17.3f}   {nbytes:>13,}")
    # Memory grows with the window.
    assert rows[0][2] < rows[1][2] < rows[2][2]
    # A larger window never hurts (and generally helps) privacy.
    assert rows[2][1] <= rows[0][1] + 0.05
