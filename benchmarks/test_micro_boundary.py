"""Boundary-crossing micro-benchmarks: what the hot-path overhaul buys.

Measured through the enclave's ``boundary_snapshot()`` API rather than
wall-clock time, because in the simulated runtime the interesting cost is
the number of mode transitions (§5.3.3): 8,000 cycles per ecall and
8,300 per ocall at 3.4 GHz dwarf the in-enclave compute.

Three effects, each benchmarked against its per-request baseline:

* connection pooling — steady-state searches pay ``send`` + ``recv``
  instead of ``sock_connect``/``send``/``recv``/``recv``/``close``;
* batched ecalls — N proxied records amortise one ecall transition;
* the in-enclave result cache — a repeated obfuscated OR-query costs
  zero engine ocalls.
"""

import pytest

from repro.core.protocol import SearchRequest, SearchResponse
from repro.core.proxy import XSearchProxyHost
from repro.crypto.channel import HandshakeInitiator
from repro.search import CorpusConfig, SearchEngine, TrackingSearchEngine

SESSION = "bench-session"
ROUNDS = 32


@pytest.fixture(scope="module")
def engine():
    return SearchEngine.with_synthetic_corpus(
        seed=5, config=CorpusConfig(docs_per_topic=40)
    )


def make_proxy(engine, **kwargs):
    kwargs.setdefault("k", 1)
    kwargs.setdefault("history_capacity", 10_000)
    kwargs.setdefault("rng_seed", 31)
    kwargs.setdefault("cache_bytes", 0)  # measured separately below
    return XSearchProxyHost(TrackingSearchEngine(engine), **kwargs)


def connect(proxy):
    initiator = HandshakeInitiator()
    proxy.begin_session(SESSION, initiator.hello())
    return initiator.finish(proxy.channel_public())


def search(proxy, endpoint, query):
    record = endpoint.encrypt(SearchRequest(query, 10).encode())
    reply = proxy.request(SESSION, record)
    return SearchResponse.decode(endpoint.decrypt(reply))


def ocalls_per_search(proxy, endpoint, tag, rounds=ROUNDS):
    search(proxy, endpoint, f"{tag} warmup")  # one-time connect
    before = proxy.enclave.boundary_snapshot()
    for i in range(rounds):
        search(proxy, endpoint, f"{tag} probe {i}")
    delta = proxy.enclave.boundary_snapshot() - before
    return delta.ocalls / rounds, delta


def test_pooling_halves_ocalls_per_search(benchmark, engine):
    """The headline number: >= 2x fewer ocalls per search with the pool."""
    pooled = make_proxy(engine)
    baseline = make_proxy(engine, pool_connections=False)
    pooled_endpoint = connect(pooled)
    baseline_endpoint = connect(baseline)

    pooled_rate, pooled_delta = ocalls_per_search(
        pooled, pooled_endpoint, "pooled")
    baseline_rate, baseline_delta = ocalls_per_search(
        baseline, baseline_endpoint, "baseline")

    assert pooled_rate > 0
    assert baseline_rate >= 2 * pooled_rate
    assert pooled_delta.ocall_counts == {"send": ROUNDS, "recv": ROUNDS}
    assert "sock_connect" not in pooled_delta.ocall_counts

    queries = iter(f"pooled timing probe {i}" for i in range(10_000_000))
    benchmark(lambda: search(pooled, pooled_endpoint, next(queries)))
    print()
    print(f"ocalls/search: pooled={pooled_rate:.1f} "
          f"baseline={baseline_rate:.1f} "
          f"reduction={baseline_rate / pooled_rate:.1f}x")
    print(f"transition cycles saved/search: "
          f"{(baseline_delta.cycles - pooled_delta.cycles) / ROUNDS:,.0f}")


def test_batching_amortises_the_ecall(benchmark, engine):
    """One ``request_batch`` ecall carries N records: the per-search ecall
    count drops from 1 to 1/N."""
    proxy = make_proxy(engine)
    endpoint = connect(proxy)
    search(proxy, endpoint, "batch warmup")

    def batch_of(n, tag):
        return [
            (SESSION, endpoint.encrypt(SearchRequest(
                f"{tag} {i}", 10).encode()))
            for i in range(n)
        ]

    def run_batch(batch):
        # Decrypt every reply: the channel nonces are counters, so the
        # client must consume replies in order.
        return [endpoint.decrypt(reply)
                for reply in proxy.request_batch(batch)]

    before = proxy.enclave.boundary_snapshot()
    run_batch(batch_of(ROUNDS, "amortised"))
    delta = proxy.enclave.boundary_snapshot() - before
    assert delta.ecalls == 1
    assert delta.ecall_counts == {"request_batch": 1}

    before = proxy.enclave.boundary_snapshot()
    for i in range(ROUNDS):
        search(proxy, endpoint, f"unbatched {i}")
    singles = proxy.enclave.boundary_snapshot() - before
    assert singles.ecalls == ROUNDS

    counter = iter(range(10_000_000))
    benchmark(lambda: run_batch(batch_of(8, f"bench {next(counter)}")))
    print()
    print(f"ecalls for {ROUNDS} searches: batched={delta.ecalls} "
          f"singles={singles.ecalls}")


def test_cache_hit_costs_zero_engine_ocalls(benchmark, engine):
    """A repeated query (k=0 for a deterministic OR-query) is served from
    enclave memory: one ecall in, zero ocalls out."""
    proxy = make_proxy(engine, k=0, cache_bytes=4 * 1024 * 1024)
    endpoint = connect(proxy)
    search(proxy, endpoint, "cheap hotel rome")  # populate

    before = proxy.enclave.boundary_snapshot()
    for _ in range(ROUNDS):
        search(proxy, endpoint, "cheap hotel rome")
    delta = proxy.enclave.boundary_snapshot() - before
    assert delta.ecalls == ROUNDS
    assert delta.ocalls == 0

    benchmark(lambda: search(proxy, endpoint, "cheap hotel rome"))
    stats = proxy.perf_stats()
    assert stats["cache_hits"] >= ROUNDS
    print()
    print(f"cache hits={stats['cache_hits']} "
          f"engine requests={stats['engine_requests']}")
