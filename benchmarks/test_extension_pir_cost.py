"""Extension bench: why the paper excludes PIR engines from Figure 5.

§2.1.3: PIR-based alternative engines are "unpractical due to their
limited performance … for very large data stores".  The structural reason
is that oblivious retrieval forces each server to scan the *entire*
database per fetched block.  This bench measures per-query wall time and
server work for growing corpus sizes and contrasts them with the normal
engine's posting-list lookups.
"""

import random
import time

from repro.pir.search import PirSearchService, PirWebSearchClient
from repro.search.corpus import CorpusConfig, CorpusGenerator
from repro.search.engine import SearchEngine

SIZES = (4, 16, 48)  # docs per topic -> 120/480/1440 documents


def run_scaling():
    rows = []
    for docs_per_topic in SIZES:
        documents = CorpusGenerator(
            CorpusConfig(docs_per_topic=docs_per_topic), seed=4
        ).generate()

        engine = SearchEngine(documents)
        started = time.perf_counter()
        for _ in range(5):
            engine.search("cheap hotel rome", 5)
        plain_seconds = (time.perf_counter() - started) / 5

        service = PirSearchService(documents, block_size=2048)
        client = PirWebSearchClient(service, rng=random.Random(1))
        started = time.perf_counter()
        client.search("cheap hotel rome", limit=5)
        pir_seconds = time.perf_counter() - started

        rows.append(
            {
                "documents": len(documents),
                "plain_seconds": plain_seconds,
                "pir_seconds": pir_seconds,
                "pir_blocks_scanned": service.server_a.blocks_scanned_total,
                "pir_bytes_down": client.bytes_downloaded,
            }
        )
    return rows


def test_extension_pir_cost(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    print()
    print("documents   plain query (ms)   PIR query (ms)   blocks scanned")
    for row in rows:
        print(
            f"{row['documents']:>9,}   {row['plain_seconds'] * 1e3:>16.2f}"
            f"   {row['pir_seconds'] * 1e3:>14.1f}"
            f"   {row['pir_blocks_scanned']:>14,}"
        )
    # PIR server work grows linearly with the corpus...
    scans = [row["pir_blocks_scanned"] for row in rows]
    docs = [row["documents"] for row in rows]
    assert scans[-1] / scans[0] >= 0.8 * docs[-1] / docs[0]
    # ...and PIR is far slower than the plain engine at every size.
    for row in rows:
        assert row["pir_seconds"] > 3 * row["plain_seconds"]
