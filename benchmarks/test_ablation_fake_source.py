"""Ablation: where the fake queries come from (the paper's key design bet).

X-Search's central claim (§4.3) is that drawing fakes from *real past
queries* beats synthesising them.  This bench pits four fake sources
against SimAttack at fixed k: real past queries (X-Search), co-occurrence
walks (PEAS), frequency-matched dictionary words (GooPIR) and RSS
headline windows (TrackMeNot).
"""

import random

from repro.baselines.goopir import FrequencyDictionary, GooPir
from repro.baselines.trackmenot import TrackMeNot
from repro.core.history import QueryHistory
from repro.core.obfuscation import obfuscate_query

K = 3


def run_ablation(context):
    pairs = context.sample_test_queries(per_user=1)
    train_texts = context.train_texts
    attack = context.attack

    history = QueryHistory(len(train_texts) + len(pairs))
    history.extend(train_texts)
    cooccurrence = context.cooccurrence
    goopir = GooPir(
        FrequencyDictionary.from_texts(train_texts), k=K,
        rng=random.Random(5),
    )
    trackmenot = TrackMeNot(seed=5)
    rng = random.Random(23)

    def protect_with(fakes, text):
        subqueries = list(fakes)
        subqueries.insert(rng.randrange(K + 1), text)
        return subqueries

    sources = {
        "real-past (X-Search)": lambda text: list(
            obfuscate_query(text, history, K, rng).subqueries
        ),
        "co-occurrence (PEAS)": lambda text: protect_with(
            cooccurrence.generate_fakes(K, rng), text
        ),
        "dictionary (GooPIR)": lambda text: protect_with(
            [goopir.generate_fake(text) for _ in range(K)], text
        ),
        "rss-feed (TMN)": lambda text: protect_with(
            trackmenot.generate_fakes(K), text
        ),
    }
    rates = {}
    for name, protect in sources.items():
        triples = [
            (user_id, text, protect(text)) for user_id, text in pairs
        ]
        rates[name] = attack.reidentification_rate(triples)
    return rates


def test_ablation_fake_source(benchmark, context):
    rates = benchmark.pedantic(
        run_ablation, args=(context,), rounds=1, iterations=1
    )
    print()
    print("fake source            re-identification rate")
    for name, rate in rates.items():
        print(f"{name:<24} {rate:>10.3f}")
    # The paper's bet: real past queries are the most confusing fakes.
    best = min(rates.values())
    assert rates["real-past (X-Search)"] <= best + 1e-9
    # RSS fakes are nearly transparent to the attack.
    assert rates["rss-feed (TMN)"] >= rates["real-past (X-Search)"]
