"""Benchmark fixtures: shared CI-scale experiment state.

Each ``test_figN_*`` benchmark regenerates the corresponding figure of the
paper (at reduced scale, same methodology) and prints its series, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
harness.  Paper-scale runs go through ``xsearch-experiments all``.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import XSearchDeployment
from repro.experiments.context import ContextConfig, ExperimentContext


@pytest.fixture(scope="session")
def context():
    return ExperimentContext(ContextConfig.fast())


@pytest.fixture(scope="session")
def deployment():
    deployment = XSearchDeployment.create(k=3, seed=17, history_capacity=50_000)
    deployment.warm_history(
        [f"warm background traffic {i} term{i % 97}" for i in range(500)]
    )
    return deployment
