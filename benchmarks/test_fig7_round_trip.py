"""Figure 7 bench: end-to-end search RTT CDFs (Direct, X-Search k=3, Tor).

Paper shape: X-Search median ≈ 0.58 s / p99 ≈ 0.87 s (usable); Tor median
≈ 1.06 s with a tail to ≈ 3 s (exceeds usability margins); Direct fastest.
"""

import pytest

from repro.experiments import fig7_round_trip


def test_fig7_round_trip(benchmark):
    result = benchmark.pedantic(
        fig7_round_trip.run,
        kwargs={"n_queries": 100, "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.median("Direct") < result.median("X-Search") < result.median("Tor")
    assert 0.4 < result.median("X-Search") < 0.75
    assert result.p99("X-Search") < 1.2
    assert result.median("Tor") > 0.85
    print()
    print(fig7_round_trip.format_table(result))


def test_fig7_system_mode_agrees_with_model(benchmark):
    """Cross-validation: Figure 7 measured through the *functional* stack
    (real brokers, enclave, onions) lands on the same medians as the
    analytic model — the model is not doing hidden work."""
    result = benchmark.pedantic(
        fig7_round_trip.run_system_mode,
        kwargs={"n_queries": 40, "seed": 1},
        rounds=1,
        iterations=1,
    )
    analytic = fig7_round_trip.run(n_queries=100, seed=1)
    for scenario in ("Direct", "X-Search", "Tor"):
        assert result.median(scenario) == pytest.approx(
            analytic.median(scenario), rel=0.25
        ), scenario
    assert result.median("Direct") < result.median("X-Search") \
        < result.median("Tor")
    print()
    print(fig7_round_trip.format_table(result))
