"""Ablation: the three-way trade-off governed by k.

k is X-Search's single user-facing knob.  The paper shows two of its
faces separately — privacy (Figure 3) and accuracy (Figure 4) — and the
latency model implies the third: each extra fake inflates the engine's
merged result work.  This bench lines all three up per k, the table a
deployment would use to pick its operating point.
"""

import random

from repro.core.filtering import filter_results
from repro.core.history import QueryHistory
from repro.core.obfuscation import obfuscate_query
from repro.experiments.fig7_round_trip import run as fig7_run
from repro.metrics.accuracy import precision_recall

K_VALUES = (0, 1, 2, 3, 5, 7)


def run_tradeoff(context):
    pairs = context.sample_test_queries(per_user=1)
    engine = context.engine
    train_texts = context.train_texts
    attack = context.attack
    rows = []
    for k in K_VALUES:
        rng = random.Random(41 + k)
        history = QueryHistory(len(train_texts) + len(pairs))
        history.extend(train_texts)

        triples = []
        recall_sum = 0.0
        for user_id, text in pairs:
            obfuscated = obfuscate_query(text, history, k, rng)
            triples.append((user_id, text, list(obfuscated.subqueries)))
            reference = engine.search(text, 20)
            merged = engine.search_or(list(obfuscated.subqueries), 20)
            filtered = filter_results(
                obfuscated.original, obfuscated.fake_queries, merged
            )[:20]
            _, recall = precision_recall(reference, filtered)
            recall_sum += recall

        reid = attack.reidentification_rate(triples)
        latency = fig7_run(n_queries=60, k=k, seed=5).median("X-Search")
        rows.append((k, reid, recall_sum / len(pairs), latency))
    return rows


def test_ablation_k_tradeoff(benchmark, context):
    rows = benchmark.pedantic(
        run_tradeoff, args=(context,), rounds=1, iterations=1
    )
    print()
    print("   k   re-identification   recall   median RTT (s)")
    for k, reid, recall, latency in rows:
        print(f"{k:>4}   {reid:>17.3f}   {recall:>6.3f}   {latency:>14.3f}")

    reids = [row[1] for row in rows]
    recalls = [row[2] for row in rows]
    latencies = [row[3] for row in rows]
    # Privacy improves markedly from k=0 to the first protected points...
    assert min(reids[1:]) < reids[0]
    # ...accuracy stays high but does not improve with k...
    assert recalls[0] >= max(recalls[1:]) - 1e-9
    assert min(recalls) > 0.6
    # ...and latency strictly grows with k (bigger merged pages).
    assert all(a < b for a, b in zip(latencies, latencies[1:]))
    # The paper's default (k=3) keeps recall > 0.8 and sub-second medians.
    k3 = next(row for row in rows if row[0] == 3)
    assert k3[2] > 0.8 and k3[3] < 1.0