"""Figure 3 bench: SimAttack re-identification rate vs k.

Paper shape: ~40% at k=0; obfuscation cuts the rate sharply; X-Search
beats PEAS at every k>0 (23-35% improvement in the paper).
"""

from repro.experiments import fig3_reidentification


def test_fig3_reidentification(benchmark, context):
    result = benchmark.pedantic(
        fig3_reidentification.run,
        args=(context,),
        kwargs={"k_values": (0, 1, 3, 5, 7), "per_user": 3},
        rounds=1,
        iterations=1,
    )
    assert result.xsearch_rates[0] > 0.25
    assert result.xsearch_rates[0] == result.peas_rates[0]
    protected = [i for i, k in enumerate(result.k_values) if k > 0]
    # Obfuscation helps at every k.
    for index in protected:
        assert result.xsearch_rates[index] < result.xsearch_rates[0]
    # X-Search beats PEAS on aggregate (per-k comparisons are noisy at the
    # benchmark's reduced scale; the paper-scale run wins at every k).
    xsearch_mean = sum(result.xsearch_rates[i] for i in protected)
    peas_mean = sum(result.peas_rates[i] for i in protected)
    assert xsearch_mean <= peas_mean
    print()
    print(fig3_reidentification.format_table(result))
