"""Ablation: robustness of the Figure 5 ordering to the service constants.

The service-time medians in :mod:`repro.experiments.service_models` are
calibrated, not measured on the authors' hardware.  This bench perturbs
every constant by ±50 % and checks that the paper's qualitative claim —
X-Search ≫ PEAS ≫ Tor ≫ RAC ≫ Dissent in sustainable throughput — never
flips, i.e. the conclusion comes from the architecture gap (orders of
magnitude), not from the exact constants.
"""

from repro.net.loadgen import saturation_rate, sweep
from repro.net.queueing import QueueingStation, ServiceTime
from repro.experiments import service_models as sm

LADDERS = {
    "X-Search": (5_000, 10_000, 20_000, 30_000, 45_000, 60_000),
    "PEAS": (200, 500, 1_000, 1_500, 2_500, 4_000),
    "Tor": (25, 50, 100, 150, 250, 400),
    "RAC": (5, 10, 20, 35, 60),
    "Dissent": (2, 5, 10, 20, 35),
}
BASE = {
    "X-Search": (sm.XSEARCH_WORKERS, sm.XSEARCH_SERVICE),
    "PEAS": (sm.PEAS_WORKERS, sm.PEAS_SERVICE),
    "Tor": (sm.TOR_WORKERS, sm.TOR_SERVICE),
    "RAC": (sm.TOR_WORKERS, sm.RAC_SERVICE),
    "Dissent": (sm.TOR_WORKERS, sm.DISSENT_SERVICE),
}
ORDER = ["X-Search", "PEAS", "Tor", "RAC", "Dissent"]


def saturation_under(scale: float) -> dict:
    out = {}
    for name in ORDER:
        workers, service = BASE[name]
        station = QueueingStation(
            name,
            workers=workers,
            service=ServiceTime(service.median_seconds * scale,
                                service.sigma),
            seed=3,
        )
        # Enough requests per point that the throughput estimate is stable
        # even at single-digit offered rates (RAC/Dissent).
        duration = max(0.5, 200.0 / min(LADDERS[name]))
        points = sweep(station, LADDERS[name], duration_seconds=duration,
                       seed=3)
        out[name] = saturation_rate(points)
    return out


def run_ablation():
    return {scale: saturation_under(scale) for scale in (0.5, 1.0, 1.5)}


def test_ablation_service_model(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print("scale   " + "   ".join(f"{n:>9}" for n in ORDER))
    for scale, saturations in results.items():
        print(f"{scale:>5.1f}   " + "   ".join(
            f"{saturations[n]:>9,.0f}" for n in ORDER
        ))
    for scale, saturations in results.items():
        values = [saturations[name] for name in ORDER]
        assert all(a > b for a, b in zip(values, values[1:])), (
            f"ordering flipped at scale {scale}: {saturations}"
        )
        # The X-Search/PEAS and PEAS/Tor gaps stay order-of-magnitude.
        assert saturations["X-Search"] > 5 * saturations["PEAS"]
        assert saturations["PEAS"] > 5 * saturations["Tor"]
