"""Figure 1 bench: CCDF of max similarity(fake query, real past queries).

Paper shape: PEAS and TrackMeNot fakes are "original" — their CCDF falls
well below 1 before similarity 1.0 — while X-Search fakes, being real past
queries, sit at similarity 1.0 by construction.
"""

from repro.experiments import fig1_fake_queries


def check_shape(result):
    def at(name, threshold):
        return result.series[name][result.thresholds.index(threshold)]

    assert at("X-Search", 1.0) == 1.0
    assert at("PEAS", 1.0) < 0.35
    assert at("TMN", 1.0) < 0.05
    assert at("TMN", 0.5) < at("PEAS", 0.5)


def test_fig1_fake_query_similarity(benchmark, context):
    result = benchmark.pedantic(
        fig1_fake_queries.run,
        args=(context,),
        kwargs={"n_fakes": 150},
        rounds=1,
        iterations=1,
    )
    check_shape(result)
    print()
    print(fig1_fake_queries.format_table(result))
