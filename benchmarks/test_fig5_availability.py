"""Acceptance gate for the fault-tolerance layer (Figure 5 companion).

Runs the seeded availability scenario — one enclave kill, two engine
outage windows — and holds the recovery machinery to the criterion:

* ≥ 90 % of searches served (full or degraded);
* the respawned enclave re-attests under the *same* measurement;
* the restored history is exactly the checkpointed one;
* no unexpected failure kinds leak to the client.
"""

import pytest

from repro.experiments import fig5_availability


@pytest.fixture(scope="module")
def result():
    return fig5_availability.run(
        seed=0,
        total_requests=60,
        crash_at=18,
        outages=((26, 34), (44, 50)),
        checkpoint_interval=6,
    )


def test_availability_meets_target(result):
    assert result.total == 60
    assert result.availability >= 0.90
    assert result.meets_target()


def test_enclave_killed_once_and_respawned(result):
    assert result.respawns == 1
    assert result.measurement_stable
    # The broker noticed the loss and re-attested exactly once.
    assert result.reconnects == 1


def test_history_restored_from_checkpoint(result):
    assert result.checkpoints >= 1
    assert result.restore_matches_checkpoint


def test_outages_served_degraded(result):
    # Both engine outages produced degraded (cache-served) responses.
    assert result.degraded > 0
    assert "degraded" in result.timeline


def test_only_engine_unavailability_surfaces(result):
    # The only failures a client ever sees are "engine down and nothing
    # cached for this query" — no raw socket errors, no enclave errors.
    assert set(result.failure_kinds) <= {"EngineUnavailableError"}


def test_schedule_is_deterministic():
    first = fig5_availability.run(seed=7, total_requests=40, crash_at=12,
                                  outages=((20, 26),),
                                  checkpoint_interval=5)
    second = fig5_availability.run(seed=7, total_requests=40, crash_at=12,
                                   outages=((20, 26),),
                                   checkpoint_interval=5)
    assert first.timeline == second.timeline
    assert first.summary() == second.summary()
