"""Micro-benchmarks of the crypto substrate.

These are the per-request costs underlying the Figure 5 service model: an
X-Search request is dominated by two AEAD operations plus the enclave
transitions; a PEAS request by a DH exchange; attestation by one RSA
signature verification.
"""

import secrets

import pytest

from repro.crypto.aead import aead_decrypt, aead_encrypt
from repro.crypto.channel import HandshakeInitiator, HandshakeResponder, establish_pair
from repro.crypto.kdf import hkdf
from repro.crypto.rsa import RsaKeyPair

KEY = secrets.token_bytes(32)
NONCE = secrets.token_bytes(12)
RECORD = secrets.token_bytes(512)  # a typical encrypted query record


def test_aead_encrypt_512b(benchmark):
    sealed = benchmark(aead_encrypt, KEY, NONCE, RECORD)
    assert len(sealed) == len(RECORD) + 16


def test_aead_decrypt_512b(benchmark):
    sealed = aead_encrypt(KEY, NONCE, RECORD)
    assert benchmark(aead_decrypt, KEY, NONCE, sealed) == RECORD


def test_aead_encrypt_16kb_result_page(benchmark):
    page = secrets.token_bytes(16 * 1024)
    benchmark(aead_encrypt, KEY, NONCE, page)


def test_hkdf_session_keys(benchmark):
    benchmark(hkdf, secrets.token_bytes(256), info=b"session", length=64)


def test_dh_handshake(benchmark):
    def handshake():
        initiator = HandshakeInitiator()
        responder = HandshakeResponder()
        responder_end = responder.finish(initiator.hello())
        initiator_end = initiator.finish(responder.public_bytes())
        return initiator_end, responder_end

    initiator_end, responder_end = benchmark(handshake)
    assert responder_end.decrypt(initiator_end.encrypt(b"x")) == b"x"


@pytest.fixture(scope="module")
def rsa_key():
    return RsaKeyPair(1024)


def test_rsa_sign(benchmark, rsa_key):
    benchmark(rsa_key.sign, b"attestation report")


def test_rsa_verify(benchmark, rsa_key):
    signature = rsa_key.sign(b"attestation report")
    benchmark(rsa_key.public.verify, b"attestation report", signature)


def test_channel_record_roundtrip(benchmark):
    a, b = establish_pair()

    def roundtrip():
        return b.decrypt(a.encrypt(RECORD))

    assert benchmark(roundtrip) == RECORD
