"""Figure 6 bench: enclave memory vs stored queries against the EPC line.

Paper shape: linear growth; the ~90 MB of usable EPC fits more than one
million past queries.
"""

from repro.experiments import fig6_memory


def test_fig6_memory(benchmark):
    result = benchmark.pedantic(
        fig6_memory.run,
        kwargs={"max_queries": 200_000, "samples": 10},
        rounds=1,
        iterations=1,
    )
    assert result.queries_fitting_epc > 1_000_000
    assert result.occupancy_bytes[-1] < result.usable_epc_bytes
    per_query = [
        y / x for x, y in zip(result.queries_stored[1:],
                              result.occupancy_bytes[1:])
    ]
    assert max(per_query) < 1.2 * min(per_query)  # linear growth
    print()
    print(fig6_memory.format_table(result))
