"""Micro-benchmarks of the X-Search proxy pipeline.

The components the paper's §5.3.3 performance analysis cares about:
Algorithm 1 (obfuscation + history update), Algorithm 2 (filtering),
history operations against the EPC model, and one full end-to-end private
search through the attested deployment.
"""

import random

import pytest

from repro.core.filtering import filter_results
from repro.core.history import QueryHistory
from repro.core.obfuscation import obfuscate_query
from repro.search.engine import SearchEngine


@pytest.fixture(scope="module")
def warm_history():
    history = QueryHistory(200_000)
    history.extend(f"past query number {i} term{i % 53}" for i in range(100_000))
    return history


def test_obfuscate_query_k3(benchmark, warm_history):
    rng = random.Random(1)
    result = benchmark(
        obfuscate_query, "cheap hotel rome", warm_history, 3, rng
    )
    assert result.k == 3


def test_obfuscate_query_k7(benchmark, warm_history):
    rng = random.Random(2)
    benchmark(obfuscate_query, "cheap hotel rome", warm_history, 7, rng)


def test_history_add(benchmark):
    history = QueryHistory(1_000_000)
    counter = iter(range(100_000_000))

    def add():
        history.add(f"query {next(counter)}")

    benchmark(add)


def test_history_sample(benchmark, warm_history):
    rng = random.Random(3)
    benchmark(warm_history.sample, 7, rng)


@pytest.fixture(scope="module")
def merged_page(deployment):
    engine = deployment.engine
    return engine.search_or(
        ["cheap hotel rome", "diabetes symptoms", "nfl playoffs",
         "mortgage rates"],
        20,
    )


def test_filter_results_k3(benchmark, merged_page):
    kept = benchmark(
        filter_results,
        "cheap hotel rome",
        ["diabetes symptoms", "nfl playoffs", "mortgage rates"],
        merged_page,
    )
    assert kept


def test_end_to_end_private_search(benchmark, deployment):
    """Full chain: client → broker (AEAD) → enclave → engine → filter →
    back.  This is the in-process cost of one Figure 2 round."""
    queries = iter(f"hotel rome probe {i}" for i in range(10_000_000))

    def search():
        return deployment.client.search(next(queries), 10)

    results = benchmark(search)
    assert results is not None


def test_enclave_transition_overhead(benchmark, deployment):
    """An ecall that does almost nothing: isolates the boundary cost of
    the runtime (dispatch + accounting), the analogue of the paper's
    mode-transition concern."""
    enclave = deployment.proxy.enclave

    benchmark(enclave.call, "channel_public")
