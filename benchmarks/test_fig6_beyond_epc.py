"""Figure 6 extension: the paging cliff past the usable EPC (§5.3.3).

Below the 90 MiB limit nothing swaps; past it, Algorithm 1's random
sampling keeps faulting cold history segments back into the EPC, and every
fault pays the page re-encryption cost.  This is why X-Search bounds the
window to x entries instead of growing forever.
"""

from repro.experiments import fig6_memory


def test_fig6_beyond_epc(benchmark):
    result = benchmark.pedantic(
        fig6_memory.run_beyond_epc,
        kwargs={"overshoot_fraction": 0.2, "sampling_rounds": 300},
        rounds=1,
        iterations=1,
    )
    # The history genuinely exceeded the EPC.
    assert result.queries_stored > result.queries_at_epc_limit
    # Filling past the limit evicted old segments...
    assert result.fill_swap_events > 0
    # ...and sampling from the over-sized history faults them back in.
    assert result.sampling_fault_events > 0
    assert result.sampling_fault_cycles > 0
    print()
    print(f"stored {result.queries_stored:,} queries "
          f"(EPC fits {result.queries_at_epc_limit:,})")
    print(f"fill evictions: {result.fill_swap_events}")
    print(f"sampling faults over 300 obfuscations: "
          f"{result.sampling_fault_events} "
          f"({result.sampling_paging_seconds * 1e3:.1f} ms simulated paging)")


def test_history_within_epc_never_swaps(benchmark):
    """Control: the paper-sized history (Figure 6's 1M queries fit) incurs
    zero paging, sampling included."""
    import random

    from repro.core.history import QueryHistory
    from repro.experiments.fig6_memory import unique_query_stream
    from repro.sgx.epc import EnclavePageCache
    from repro.sgx.runtime import EnclaveMemory

    def run():
        epc = EnclavePageCache()
        history = QueryHistory(300_000, enclave_memory=EnclaveMemory(epc))
        stream = unique_query_stream(seed=9)
        for _ in range(200_000):
            history.add(next(stream))
        rng = random.Random(5)
        for _ in range(300):
            history.sample(3, rng)
        return epc

    epc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not epc.exceeds_epc()
    assert epc.stats.swap_events == 0
    assert epc.stats.swap_cycles == 0
